//! Type-erased streaming client/server pair covering every
//! [`MechanismKind`]: one report enum, one accumulator enum, one
//! [`Estimate`] out.
//!
//! [`Mechanism::run`] and the bench harness are thin drivers over this
//! path; use it directly when reports arrive incrementally (a network
//! collector, a log replay) or when partial aggregates are built by
//! separate processes and merged later:
//!
//! ```
//! use ldp_core::{Accumulator, MarginalEstimator, MechanismKind};
//! use ldp_core::user_rng;
//!
//! let mechanism = MechanismKind::MargHt.build(8, 2, 1.1);
//! let mut acc = mechanism.accumulator();
//! for user in 0..5_000u64 {
//!     let mut rng = user_rng(42, user); // each user's private RNG
//!     let report = mechanism.encode(user % 200, &mut rng);
//!     acc.absorb(&report);
//! }
//! let estimate = acc.finalize();
//! assert_eq!(estimate.marginal(ldp_bits::Mask::from_attrs(&[1, 2])).len(), 4);
//! ```

use crate::wire::{tag, Reader, WireError, Writer};
use crate::{
    Accumulator, Estimate, InpHtReport, MargHtReport, MargPsReport, MargRrReport, Mechanism,
    MechanismKind,
};
use rand::Rng;

/// Decode a 0/1 byte back into a sign flag.
fn get_sign(r: &mut Reader<'_>) -> Result<bool, WireError> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::Invalid("report sign flag")),
    }
}

/// One user's report, for any [`MechanismKind`] — what
/// [`Mechanism::encode`] produces and [`MechanismAccumulator`] absorbs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MechanismReport {
    /// Perturbed one-hot positions (see [`crate::InpRr::encode`]).
    InpRr(Vec<u32>),
    /// Perturbed input index (see [`crate::InpPs::encode`]).
    InpPs(u64),
    /// Sampled Hadamard coefficient + sign (see [`crate::InpHt::encode`]).
    InpHt(InpHtReport),
    /// Sampled marginal + perturbed table (see [`crate::MargRr::encode`]).
    MargRr(MargRrReport),
    /// Sampled marginal + perturbed cell (see [`crate::MargPs::encode`]).
    MargPs(MargPsReport),
    /// Sampled marginal + coefficient sign (see [`crate::MargHt::encode`]).
    MargHt(MargHtReport),
    /// Budget-split perturbed row (see [`crate::InpEm::encode`]).
    InpEm(u64),
}

impl MechanismReport {
    /// Which mechanism this report belongs to.
    #[must_use]
    pub fn kind(&self) -> MechanismKind {
        match self {
            MechanismReport::InpRr(_) => MechanismKind::InpRr,
            MechanismReport::InpPs(_) => MechanismKind::InpPs,
            MechanismReport::InpHt(_) => MechanismKind::InpHt,
            MechanismReport::MargRr(_) => MechanismKind::MargRr,
            MechanismReport::MargPs(_) => MechanismKind::MargPs,
            MechanismReport::MargHt(_) => MechanismKind::MargHt,
            MechanismReport::InpEm(_) => MechanismKind::InpEm,
        }
    }

    /// Serialize into a report frame payload (tags `REPORT_*` of
    /// [`tag`]). This is what one user transmits, so the encodings stay
    /// as close to the Table 2 communication costs as byte alignment
    /// allows.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            MechanismReport::InpRr(ones) => {
                let mut w = Writer::with_tag(tag::REPORT_INP_RR);
                w.put_u32_slice(ones);
                w.into_bytes()
            }
            MechanismReport::InpPs(cell) => {
                let mut w = Writer::with_tag(tag::REPORT_INP_PS);
                w.put_u64(*cell);
                w.into_bytes()
            }
            MechanismReport::InpHt(r) => {
                let mut w = Writer::with_tag(tag::REPORT_INP_HT);
                w.put_u32(r.coefficient);
                w.put_u8(u8::from(r.sign_positive));
                w.into_bytes()
            }
            MechanismReport::MargRr(r) => {
                let mut w = Writer::with_tag(tag::REPORT_MARG_RR);
                w.put_u32(r.marginal);
                w.put_u16_slice(&r.ones);
                w.into_bytes()
            }
            MechanismReport::MargPs(r) => {
                let mut w = Writer::with_tag(tag::REPORT_MARG_PS);
                w.put_u32(r.marginal);
                w.put_u16(r.cell);
                w.into_bytes()
            }
            MechanismReport::MargHt(r) => {
                let mut w = Writer::with_tag(tag::REPORT_MARG_HT);
                w.put_u32(r.marginal);
                w.put_u16(r.coefficient);
                w.put_u8(u8::from(r.sign_positive));
                w.into_bytes()
            }
            MechanismReport::InpEm(row) => {
                let mut w = Writer::with_tag(tag::REPORT_INP_EM);
                w.put_u64(*row);
                w.into_bytes()
            }
        }
    }

    /// Decode one report at a cursor, leaving the cursor on the byte
    /// after it (no trailing-bytes check) — the walk step for
    /// `REPORT_BATCH` payloads, which concatenate many self-describing
    /// report blobs. [`MechanismReport::from_bytes`] is this plus a
    /// whole-blob [`Reader::finish`].
    pub fn decode_next(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.peek() {
            Some(tag::REPORT_INP_RR) => {
                r.expect_tag(tag::REPORT_INP_RR)?;
                Ok(MechanismReport::InpRr(r.get_u32_vec()?))
            }
            Some(tag::REPORT_INP_PS) => {
                r.expect_tag(tag::REPORT_INP_PS)?;
                Ok(MechanismReport::InpPs(r.get_u64()?))
            }
            Some(tag::REPORT_INP_HT) => {
                r.expect_tag(tag::REPORT_INP_HT)?;
                let coefficient = r.get_u32()?;
                let sign_positive = get_sign(r)?;
                Ok(MechanismReport::InpHt(InpHtReport {
                    coefficient,
                    sign_positive,
                }))
            }
            Some(tag::REPORT_MARG_RR) => {
                r.expect_tag(tag::REPORT_MARG_RR)?;
                let marginal = r.get_u32()?;
                let ones = r.get_u16_vec()?;
                Ok(MechanismReport::MargRr(MargRrReport { marginal, ones }))
            }
            Some(tag::REPORT_MARG_PS) => {
                r.expect_tag(tag::REPORT_MARG_PS)?;
                let marginal = r.get_u32()?;
                let cell = r.get_u16()?;
                Ok(MechanismReport::MargPs(MargPsReport { marginal, cell }))
            }
            Some(tag::REPORT_MARG_HT) => {
                r.expect_tag(tag::REPORT_MARG_HT)?;
                let marginal = r.get_u32()?;
                let coefficient = r.get_u16()?;
                let sign_positive = get_sign(r)?;
                Ok(MechanismReport::MargHt(MargHtReport {
                    marginal,
                    coefficient,
                    sign_positive,
                }))
            }
            Some(tag::REPORT_INP_EM) => {
                r.expect_tag(tag::REPORT_INP_EM)?;
                Ok(MechanismReport::InpEm(r.get_u64()?))
            }
            _ => Err(WireError::Invalid("unknown mechanism report tag")),
        }
    }

    /// Decode a report frame payload written by
    /// [`MechanismReport::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let report = Self::decode_next(&mut r)?;
        r.finish()?;
        Ok(report)
    }

    /// Cursor form of [`MechanismReport::decode_into`]: decode one
    /// report at the cursor into `self`, reusing any heap capacity the
    /// current value already owns. On error the cursor position and
    /// `self` are unspecified (but valid); neither must be used further.
    pub fn decode_next_into(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        match (r.peek(), &mut *self) {
            (Some(tag::REPORT_INP_RR), MechanismReport::InpRr(ones)) => {
                r.expect_tag(tag::REPORT_INP_RR)?;
                r.get_u32_vec_into(ones)
            }
            (Some(tag::REPORT_MARG_RR), MechanismReport::MargRr(report)) => {
                r.expect_tag(tag::REPORT_MARG_RR)?;
                report.marginal = r.get_u32()?;
                r.get_u16_vec_into(&mut report.ones)
            }
            // Every other report kind is a fixed-size value: a plain
            // decode already allocates nothing.
            _ => {
                *self = MechanismReport::decode_next(r)?;
                Ok(())
            }
        }
    }

    /// Decode a report frame payload into `self`, reusing any heap
    /// capacity the current value already owns (the `InpRR` / `MargRR`
    /// position buffers) — the zero-allocation decode path of the
    /// batched ingest scratch. Accepts and rejects exactly what
    /// [`MechanismReport::from_bytes`] does; on error `self` is left as
    /// some valid (but unspecified) report and must not be absorbed.
    pub fn decode_into(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let mut r = Reader::new(bytes);
        self.decode_next_into(&mut r)?;
        r.finish()
    }
}

/// Type-erased [`Accumulator`] over the seven mechanism aggregators —
/// the server half of [`Mechanism`].
///
/// Built by [`Mechanism::accumulator`]; absorbs the
/// [`MechanismReport`]s of the *same* kind (a mismatched report kind is
/// a protocol violation and panics) and finalizes into the unified
/// [`Estimate`].
#[derive(Clone, Debug)]
pub enum MechanismAccumulator {
    /// See [`crate::InpRrAggregator`]. The faithful streaming path for
    /// `InpRR` costs `O(2^d)` per report; [`Mechanism::run`] uses the
    /// exact-in-distribution aggregate simulation instead.
    InpRr(crate::InpRrAggregator),
    /// See [`crate::InpPsAggregator`].
    InpPs(crate::InpPsAggregator),
    /// See [`crate::InpHtAggregator`].
    InpHt(crate::InpHtAggregator),
    /// See [`crate::MargRrAggregator`].
    MargRr(crate::MargRrAggregator),
    /// See [`crate::MargPsAggregator`].
    MargPs(crate::MargPsAggregator),
    /// See [`crate::MargHtAggregator`].
    MargHt(crate::MargHtAggregator),
    /// See [`crate::InpEmAggregator`].
    InpEm(crate::InpEmAggregator),
}

impl MechanismAccumulator {
    /// Which mechanism this accumulator serves.
    #[must_use]
    pub fn kind(&self) -> MechanismKind {
        match self {
            MechanismAccumulator::InpRr(_) => MechanismKind::InpRr,
            MechanismAccumulator::InpPs(_) => MechanismKind::InpPs,
            MechanismAccumulator::InpHt(_) => MechanismKind::InpHt,
            MechanismAccumulator::MargRr(_) => MechanismKind::MargRr,
            MechanismAccumulator::MargPs(_) => MechanismKind::MargPs,
            MechanismAccumulator::MargHt(_) => MechanismKind::MargHt,
            MechanismAccumulator::InpEm(_) => MechanismKind::InpEm,
        }
    }
}

#[track_caller]
fn kind_mismatch(own: MechanismKind, got: MechanismKind) -> ! {
    panic!(
        "{} accumulator cannot absorb a {} report",
        own.name(),
        got.name()
    );
}

impl Accumulator for MechanismAccumulator {
    type Report = MechanismReport;
    type Output = Estimate;

    fn absorb(&mut self, report: &MechanismReport) {
        match (&mut *self, report) {
            (MechanismAccumulator::InpRr(a), MechanismReport::InpRr(r)) => a.absorb(r),
            (MechanismAccumulator::InpPs(a), MechanismReport::InpPs(r)) => a.absorb(*r),
            (MechanismAccumulator::InpHt(a), MechanismReport::InpHt(r)) => a.absorb(*r),
            (MechanismAccumulator::MargRr(a), MechanismReport::MargRr(r)) => a.absorb(r),
            (MechanismAccumulator::MargPs(a), MechanismReport::MargPs(r)) => a.absorb(*r),
            (MechanismAccumulator::MargHt(a), MechanismReport::MargHt(r)) => a.absorb(*r),
            (MechanismAccumulator::InpEm(a), MechanismReport::InpEm(r)) => a.absorb(*r),
            (acc, r) => kind_mismatch(acc.kind(), r.kind()),
        }
    }

    /// Batched ingest with the accumulator dispatch hoisted out of the
    /// loop: one variant match up front, then a tight absorb loop per
    /// report (no allocation, no per-report double dispatch). `InpEM`
    /// additionally routes through its group-by-value kernel
    /// (`InpEmAggregator::absorb_batch_iter`), so a batch of n reports
    /// over k distinct rows costs k count-map updates instead of n.
    fn absorb_batch(&mut self, reports: &[MechanismReport]) {
        macro_rules! drain {
            ($acc:ident, $variant:ident, ref) => {
                drain!(@loop $acc, $variant, r, r)
            };
            ($acc:ident, $variant:ident, val) => {
                drain!(@loop $acc, $variant, r, *r)
            };
            (@loop $acc:ident, $variant:ident, $r:ident, $arg:expr) => {
                for report in reports {
                    match report {
                        MechanismReport::$variant($r) => $acc.absorb($arg),
                        other => kind_mismatch(MechanismKind::$variant, other.kind()),
                    }
                }
            };
        }
        match &mut *self {
            MechanismAccumulator::InpRr(a) => drain!(a, InpRr, ref),
            MechanismAccumulator::InpPs(a) => drain!(a, InpPs, val),
            MechanismAccumulator::InpHt(a) => drain!(a, InpHt, val),
            MechanismAccumulator::MargRr(a) => drain!(a, MargRr, ref),
            MechanismAccumulator::MargPs(a) => drain!(a, MargPs, val),
            MechanismAccumulator::MargHt(a) => drain!(a, MargHt, val),
            MechanismAccumulator::InpEm(a) => {
                a.absorb_batch_iter(reports.iter().map(|r| match r {
                    MechanismReport::InpEm(row) => *row,
                    other => kind_mismatch(MechanismKind::InpEm, other.kind()),
                }));
            }
        }
    }

    fn merge(&mut self, other: Self) {
        match (&mut *self, other) {
            (MechanismAccumulator::InpRr(a), MechanismAccumulator::InpRr(b)) => a.merge(b),
            (MechanismAccumulator::InpPs(a), MechanismAccumulator::InpPs(b)) => a.merge(b),
            (MechanismAccumulator::InpHt(a), MechanismAccumulator::InpHt(b)) => a.merge(b),
            (MechanismAccumulator::MargRr(a), MechanismAccumulator::MargRr(b)) => a.merge(b),
            (MechanismAccumulator::MargPs(a), MechanismAccumulator::MargPs(b)) => a.merge(b),
            (MechanismAccumulator::MargHt(a), MechanismAccumulator::MargHt(b)) => a.merge(b),
            (MechanismAccumulator::InpEm(a), MechanismAccumulator::InpEm(b)) => a.merge(b),
            (acc, b) => panic!(
                "{} accumulator cannot merge a {} accumulator",
                acc.kind().name(),
                b.kind().name()
            ),
        }
    }

    fn report_count(&self) -> u64 {
        match self {
            MechanismAccumulator::InpRr(a) => a.report_count(),
            MechanismAccumulator::InpPs(a) => a.report_count(),
            MechanismAccumulator::InpHt(a) => a.report_count(),
            MechanismAccumulator::MargRr(a) => a.report_count(),
            MechanismAccumulator::MargPs(a) => a.report_count(),
            MechanismAccumulator::MargHt(a) => a.report_count(),
            MechanismAccumulator::InpEm(a) => a.report_count(),
        }
    }

    fn finalize(self) -> Estimate {
        match self {
            MechanismAccumulator::InpRr(a) => Estimate::Full(a.finalize()),
            MechanismAccumulator::InpPs(a) => Estimate::Full(a.finalize()),
            MechanismAccumulator::InpHt(a) => Estimate::Hadamard(a.finalize()),
            MechanismAccumulator::MargRr(a) => Estimate::MarginalSet(a.finalize()),
            MechanismAccumulator::MargPs(a) => Estimate::MarginalSet(a.finalize()),
            MechanismAccumulator::MargHt(a) => Estimate::MarginalSet(a.finalize()),
            MechanismAccumulator::InpEm(a) => Estimate::Em(a.finalize()),
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        match self {
            MechanismAccumulator::InpRr(a) => a.to_bytes(),
            MechanismAccumulator::InpPs(a) => a.to_bytes(),
            MechanismAccumulator::InpHt(a) => a.to_bytes(),
            MechanismAccumulator::MargRr(a) => a.to_bytes(),
            MechanismAccumulator::MargPs(a) => a.to_bytes(),
            MechanismAccumulator::MargHt(a) => a.to_bytes(),
            MechanismAccumulator::InpEm(a) => a.to_bytes(),
        }
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        match Reader::peek_tag(bytes) {
            Some(tag::INP_RR) => Accumulator::from_bytes(bytes).map(MechanismAccumulator::InpRr),
            Some(tag::INP_PS) => Accumulator::from_bytes(bytes).map(MechanismAccumulator::InpPs),
            Some(tag::INP_HT) => Accumulator::from_bytes(bytes).map(MechanismAccumulator::InpHt),
            Some(tag::MARG_RR) => Accumulator::from_bytes(bytes).map(MechanismAccumulator::MargRr),
            Some(tag::MARG_PS) => Accumulator::from_bytes(bytes).map(MechanismAccumulator::MargPs),
            Some(tag::MARG_HT) => Accumulator::from_bytes(bytes).map(MechanismAccumulator::MargHt),
            Some(tag::INP_EM) => Accumulator::from_bytes(bytes).map(MechanismAccumulator::InpEm),
            _ => Err(WireError::Invalid("unknown mechanism accumulator tag")),
        }
    }
}

impl Mechanism {
    /// Client side of the streaming pipeline: encode one user's record
    /// into the report this mechanism transmits, consuming this user's
    /// private randomness (see [`crate::user_rng`] for the schedule the
    /// drivers use).
    #[must_use]
    pub fn encode<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> MechanismReport {
        match self {
            Mechanism::InpRr(m) => MechanismReport::InpRr(m.encode(row, rng)),
            Mechanism::InpPs(m) => MechanismReport::InpPs(m.encode(row, rng)),
            Mechanism::InpHt(m) => MechanismReport::InpHt(m.encode(row, rng)),
            Mechanism::MargRr(m) => MechanismReport::MargRr(m.encode(row, rng)),
            Mechanism::MargPs(m) => MechanismReport::MargPs(m.encode(row, rng)),
            Mechanism::MargHt(m) => MechanismReport::MargHt(m.encode(row, rng)),
            Mechanism::InpEm(m) => MechanismReport::InpEm(m.encode(row, rng)),
        }
    }

    /// Server side of the streaming pipeline: a fresh, empty
    /// [`MechanismAccumulator`] matching this mechanism's configuration.
    #[must_use]
    pub fn accumulator(&self) -> MechanismAccumulator {
        match self {
            Mechanism::InpRr(m) => MechanismAccumulator::InpRr(m.aggregator()),
            Mechanism::InpPs(m) => MechanismAccumulator::InpPs(m.aggregator()),
            Mechanism::InpHt(m) => MechanismAccumulator::InpHt(m.aggregator()),
            Mechanism::MargRr(m) => MechanismAccumulator::MargRr(m.aggregator()),
            Mechanism::MargPs(m) => MechanismAccumulator::MargPs(m.aggregator()),
            Mechanism::MargHt(m) => MechanismAccumulator::MargHt(m.aggregator()),
            Mechanism::InpEm(m) => MechanismAccumulator::InpEm(m.aggregator()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn streaming_matches_batched_for_every_kind() {
        for kind in [
            MechanismKind::InpRr,
            MechanismKind::InpPs,
            MechanismKind::InpHt,
            MechanismKind::MargRr,
            MechanismKind::MargPs,
            MechanismKind::MargHt,
            MechanismKind::InpEm,
        ] {
            let mech = kind.build(4, 2, 1.1);
            let mut rng = StdRng::seed_from_u64(11);
            let reports: Vec<MechanismReport> =
                (0..500u64).map(|u| mech.encode(u % 16, &mut rng)).collect();

            let mut one_by_one = mech.accumulator();
            for r in &reports {
                one_by_one.absorb(r);
            }
            let mut batched = mech.accumulator();
            batched.absorb_batch(&reports);

            assert_eq!(one_by_one.report_count(), 500, "{}", kind.name());
            assert_eq!(
                one_by_one.to_bytes(),
                batched.to_bytes(),
                "{} batched ingest diverged",
                kind.name()
            );
        }
    }

    #[test]
    fn round_trips_through_bytes_for_every_kind() {
        for kind in [
            MechanismKind::InpRr,
            MechanismKind::InpPs,
            MechanismKind::InpHt,
            MechanismKind::MargRr,
            MechanismKind::MargPs,
            MechanismKind::MargHt,
            MechanismKind::InpEm,
        ] {
            let mech = kind.build(4, 2, 0.9);
            let mut rng = StdRng::seed_from_u64(5);
            let mut acc = mech.accumulator();
            for u in 0..300u64 {
                acc.absorb(&mech.encode(u % 16, &mut rng));
            }
            let bytes = acc.to_bytes();
            let back = MechanismAccumulator::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert_eq!(back.kind(), kind);
            assert_eq!(back.to_bytes(), bytes, "{} round trip", kind.name());
            assert_eq!(acc.finalize(), back.finalize(), "{} estimates", kind.name());
        }
    }

    #[test]
    #[should_panic(expected = "InpHT accumulator cannot absorb a MargPS report")]
    fn mismatched_report_kind_panics() {
        let mech = MechanismKind::InpHt.build(4, 2, 1.0);
        let other = MechanismKind::MargPs.build(4, 2, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut acc = mech.accumulator();
        acc.absorb(&other.encode(3, &mut rng));
    }

    #[test]
    fn rejects_garbage_bytes() {
        assert!(MechanismAccumulator::from_bytes(&[]).is_err());
        assert!(MechanismAccumulator::from_bytes(&[0xFF, 0x01, 2, 3]).is_err());
    }

    #[test]
    fn reports_round_trip_through_bytes_for_every_kind() {
        for kind in MechanismKind::ALL {
            let mech = kind.build(5, 2, 1.3);
            let mut rng = StdRng::seed_from_u64(77);
            let mut acc = mech.accumulator();
            let mut rehydrated = mech.accumulator();
            for u in 0..200u64 {
                let report = mech.encode(u % 32, &mut rng);
                let bytes = report.to_bytes();
                let back = MechanismReport::from_bytes(&bytes)
                    .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
                assert_eq!(back, report, "{} report round trip", kind.name());
                acc.absorb(&report);
                rehydrated.absorb(&back);
            }
            assert_eq!(
                acc.to_bytes(),
                rehydrated.to_bytes(),
                "{} accumulator state diverged after a report wire round trip",
                kind.name()
            );
        }
    }

    #[test]
    fn report_decode_rejects_bad_tag_truncation_and_bad_sign() {
        assert_eq!(
            MechanismReport::from_bytes(&[]),
            Err(WireError::Invalid("unknown mechanism report tag"))
        );
        assert_eq!(
            MechanismReport::from_bytes(&[0x7E, 0x01]),
            Err(WireError::Invalid("unknown mechanism report tag"))
        );

        let full = MechanismReport::InpHt(InpHtReport {
            coefficient: 9,
            sign_positive: true,
        })
        .to_bytes();
        assert_eq!(
            MechanismReport::from_bytes(&full[..full.len() - 1]),
            Err(WireError::Truncated)
        );
        let mut bad_sign = full.clone();
        *bad_sign.last_mut().unwrap() = 2;
        assert_eq!(
            MechanismReport::from_bytes(&bad_sign),
            Err(WireError::Invalid("report sign flag"))
        );

        // Trailing bytes after a complete report are rejected.
        let mut long = MechanismReport::InpPs(3).to_bytes();
        long.push(0);
        assert_eq!(
            MechanismReport::from_bytes(&long),
            Err(WireError::TrailingBytes(1))
        );

        // A MargRR ones-list that claims more elements than the blob
        // holds fails before allocating.
        let mut w = Writer::with_tag(tag::REPORT_MARG_RR);
        w.put_u32(0);
        w.put_u32(u32::MAX); // ones-length prefix with no payload
        assert_eq!(
            MechanismReport::from_bytes(&w.into_bytes()),
            Err(WireError::Truncated)
        );
    }
}
