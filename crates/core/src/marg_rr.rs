//! `MargRR` — parallel randomized response on one random k-way marginal
//! (§4.3).
//!
//! Client: sample a marginal `β` uniformly from the `C(d,k)` k-way
//! marginals, materialize the user's (one-hot) marginal table `C_β(t_i)`
//! of size `2^k`, perturb every cell with `ε/2`-RR, and send
//! `⟨perturbed table, β⟩` (`d + 2^k` bits). Aggregator: per marginal,
//! unbias cell frequencies over the users who sampled it. Error
//! `Õ(2^k d^{k/2} / (ε√N))`.

use crate::wire::{tag, Reader, WireError, Writer};
use crate::{Accumulator, MarginalSetEstimate};
use ldp_bits::{compress, masks_of_weight, Mask};
use ldp_mechanisms::{UnaryEncoding, UnaryFlavor};
use ldp_sampling::{bernoulli_fixed, bernoulli_word};
use rand::Rng;

/// One user's report: the sampled marginal and the perturbed one-hot
/// table (as the list of cells reporting 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MargRrReport {
    /// Index of the sampled marginal in `masks_of_weight(d, k)` order.
    pub marginal: u32,
    /// Cells (local indices in `[0, 2^k)`) reporting 1.
    pub ones: Vec<u16>,
}

/// Configuration of the `MargRR` mechanism.
#[derive(Clone, Debug)]
pub struct MargRr {
    d: u32,
    k: u32,
    marginals: Vec<Mask>,
    ue: UnaryEncoding,
}

impl MargRr {
    /// ε-LDP instance targeting k-way marginals over `d` attributes,
    /// using the Wang et al. optimized probabilities (§5.1).
    #[must_use]
    pub fn new(d: u32, k: u32, eps: f64) -> Self {
        Self::with_flavor(d, k, eps, UnaryFlavor::Optimized)
    }

    /// Choose the unary-encoding probability flavor explicitly.
    #[must_use]
    pub fn with_flavor(d: u32, k: u32, eps: f64, flavor: UnaryFlavor) -> Self {
        assert!(k >= 1 && k <= d && k <= 16, "need 1 ≤ k ≤ min(d, 16)");
        MargRr {
            d,
            k,
            marginals: masks_of_weight(d, k).collect(),
            ue: UnaryEncoding::for_epsilon(eps, flavor),
        }
    }

    /// Domain dimensionality.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Marginal order.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of k-way marginals `C(d,k)`.
    #[must_use]
    pub fn marginal_count(&self) -> usize {
        self.marginals.len()
    }

    /// Client: sample a marginal, perturb its one-hot table.
    pub fn encode<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> MargRrReport {
        let (marginal, cell) = self.sample_marginal(row, rng);
        let mut ones = Vec::new();
        self.perturb_table(cell, rng, |c| ones.push(c));
        MargRrReport { marginal, ones }
    }

    /// First half of the encode: draw the marginal uniformly and project
    /// the row onto it. Returns `(marginal index, local cell)`. Split
    /// out so the batched kernel can write the marginal field before the
    /// variable-length ones list.
    #[inline]
    pub fn sample_marginal<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> (u32, u64) {
        let mi = rng.gen_range(0..self.marginals.len());
        let beta = self.marginals[mi];
        (mi as u32, compress(row, beta.bits()))
    }

    /// Second half of the encode, shared by the serial
    /// [`encode`](Self::encode) and the batched kernel: walk the
    /// perturbed `2^k`-cell table's 1-positions in ascending order. The
    /// `2^k − 1` background cells are i.i.d. `Bernoulli(p₀)` coins drawn
    /// 64 lanes per RNG word via [`bernoulli_word`], with the true
    /// cell's bit overridden by a separate `Bernoulli(p₁)` draw.
    #[inline]
    pub fn perturb_table<R: Rng + ?Sized, F: FnMut(u16)>(
        &self,
        cell: u64,
        rng: &mut R,
        mut emit: F,
    ) {
        let cells = 1u64 << self.k;
        debug_assert!(cell < cells);
        let truth = rng.gen_bool(self.ue.p1());
        let p0 = bernoulli_fixed(self.ue.p0());
        let mut base = 0u64;
        while base < cells {
            let lanes = (cells - base).min(64) as u32;
            let mut word = bernoulli_word(rng, p0, lanes);
            if cell >= base && cell - base < u64::from(lanes) {
                let bit = 1u64 << (cell - base);
                if truth {
                    word |= bit;
                } else {
                    word &= !bit;
                }
            }
            while word != 0 {
                let tz = word.trailing_zeros();
                emit(base as u16 + tz as u16);
                word &= word - 1;
            }
            base += u64::from(lanes);
        }
    }

    /// Fresh aggregator.
    #[must_use]
    pub fn aggregator(&self) -> MargRrAggregator {
        MargRrAggregator {
            ue: self.ue,
            d: self.d,
            k: self.k,
            ones: vec![0u64; (1usize << self.k) * self.marginals.len()],
            users: vec![0u64; self.marginals.len()],
        }
    }
}

/// Aggregator for [`MargRr`]: per-marginal per-cell 1-report counts,
/// stored flat (marginal-major) so the per-report hot loop touches one
/// contiguous table instead of chasing a nested `Vec`.
#[derive(Clone, Debug)]
pub struct MargRrAggregator {
    ue: UnaryEncoding,
    d: u32,
    k: u32,
    ones: Vec<u64>,
    users: Vec<u64>,
}

impl MargRrAggregator {
    /// Absorb one report. Cell indices are folded into the sampled
    /// marginal's 2^k-cell table (`cell mod 2^k`), so a corrupt wire
    /// report degrades to a miscount instead of panicking a collector
    /// thread; a report naming a marginal outside `C(d,k)` still
    /// panics, as before.
    pub fn absorb(&mut self, report: &MargRrReport) {
        let cells = 1usize << self.k;
        let mask = cells - 1;
        let m = report.marginal as usize;
        self.users[m] += 1;
        let base = m * cells;
        for &c in &report.ones {
            self.ones[base + (c as usize & mask)] += 1;
        }
    }

    /// Batched ingest: the serial loop with the flat table borrows and
    /// cell mask hoisted. State is byte-identical to absorbing each
    /// report in order.
    pub fn absorb_batch(&mut self, reports: &[MargRrReport]) {
        let cells = 1usize << self.k;
        let mask = cells - 1;
        let users = &mut self.users[..];
        let ones = &mut self.ones[..];
        for report in reports {
            let m = report.marginal as usize;
            // Named invariant before the raw index: the cell offset is
            // masked into range, so the marginal index is the only way
            // this kernel can leave the flat table.
            debug_assert!(
                m < users.len(),
                "report marginal {m} outside the C(d,k) table set"
            );
            users[m] += 1;
            let base = m * cells;
            for &c in &report.ones {
                ones[base + (c as usize & mask)] += 1;
            }
        }
    }

    /// Fold another shard's aggregator into this one.
    pub fn merge(&mut self, other: MargRrAggregator) {
        for (a, b) in self.users.iter_mut().zip(other.users) {
            *a += b;
        }
        for (a, b) in self.ones.iter_mut().zip(other.ones) {
            *a += b;
        }
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn n(&self) -> usize {
        self.users.iter().map(|&c| c as usize).sum()
    }

    /// Unbias every marginal table. Marginals nobody sampled fall back to
    /// the uniform table.
    #[must_use]
    pub fn finish(self) -> MarginalSetEstimate {
        let cells = 1usize << self.k;
        let uniform = 1.0 / cells as f64;
        let tables = self
            .ones
            .chunks_exact(cells)
            .zip(&self.users)
            .map(|(table, &u)| {
                if u == 0 {
                    vec![uniform; table.len()]
                } else {
                    table
                        .iter()
                        .map(|&c| self.ue.unbias_frequency(c as f64 / u as f64))
                        .collect()
                }
            })
            .collect();
        MarginalSetEstimate::new(self.d, self.k, tables)
    }
}

impl Accumulator for MargRrAggregator {
    type Report = MargRrReport;
    type Output = MarginalSetEstimate;

    fn absorb(&mut self, report: &MargRrReport) {
        MargRrAggregator::absorb(self, report);
    }

    fn absorb_batch(&mut self, reports: &[MargRrReport]) {
        MargRrAggregator::absorb_batch(self, reports);
    }

    fn merge(&mut self, other: Self) {
        MargRrAggregator::merge(self, other);
    }

    fn report_count(&self) -> u64 {
        self.users.iter().sum()
    }

    fn finalize(self) -> MarginalSetEstimate {
        self.finish()
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_tag(tag::MARG_RR);
        w.put_u32(self.d);
        w.put_u32(self.k);
        w.put_f64(self.ue.p1());
        w.put_f64(self.ue.p0());
        w.put_u64_slice(&self.users);
        w.put_u64_slice(&self.ones);
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::with_tag(bytes, tag::MARG_RR)?;
        let d = r.get_u32()?;
        let k = r.get_u32()?;
        let p1 = r.get_f64()?;
        let p0 = r.get_f64()?;
        let users = r.get_u64_vec()?;
        let flat = r.get_u64_vec()?;
        r.finish()?;
        if !(1..=63).contains(&d) || k < 1 || k > d || k > 16 {
            return Err(WireError::Invalid("MargRR dimensions"));
        }
        if !(0.0..=1.0).contains(&p1) || !(0.0..=1.0).contains(&p0) || p1 <= p0 {
            return Err(WireError::Invalid("MargRR probabilities"));
        }
        // O(k) count and checked width math — never enumerate C(d,k)
        // masks or trust a product on untrusted dims.
        let marginals = ldp_bits::binomial(u64::from(d), u64::from(k));
        let cells = 1u64 << k;
        let expected = marginals
            .checked_mul(cells)
            .ok_or(WireError::Invalid("MargRR table shape"))?;
        if users.len() as u64 != marginals || flat.len() as u64 != expected {
            return Err(WireError::Invalid("MargRR table shape"));
        }
        Ok(MargRrAggregator {
            ue: UnaryEncoding::with_probabilities(p1, p0),
            d,
            k,
            ones: flat,
            users,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mean_kway_tvd;
    use ldp_data::{movielens::MovieLensGenerator, BinaryDataset};
    use rand::{rngs::StdRng, SeedableRng};

    fn run(mech: &MargRr, rows: &[u64], seed: u64) -> MarginalSetEstimate {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agg = mech.aggregator();
        for &row in rows {
            agg.absorb(&mech.encode(row, &mut rng));
        }
        agg.finish()
    }

    #[test]
    fn marginal_count() {
        assert_eq!(MargRr::new(8, 2, 1.0).marginal_count(), 28);
        assert_eq!(MargRr::new(16, 3, 1.0).marginal_count(), 560);
    }

    #[test]
    fn reconstructs_marginals() {
        let mut rng = StdRng::seed_from_u64(0);
        let ds = MovieLensGenerator::new(6).generate(150_000, &mut rng);
        let mech = MargRr::new(6, 2, 1.1);
        let est = run(&mech, ds.rows(), 1);
        let tvd = mean_kway_tvd(&est, &ds, 2);
        assert!(tvd < 0.12, "mean 2-way tvd {tvd}");
    }

    #[test]
    fn tables_sum_to_one() {
        // OUE unbiasing is affine, and each user's one-hot sums to 1 only
        // in expectation — so sums should concentrate near 1.
        let mut rng = StdRng::seed_from_u64(2);
        let ds = MovieLensGenerator::new(5).generate(80_000, &mut rng);
        let mech = MargRr::new(5, 2, 1.1);
        let est = run(&mech, ds.rows(), 3);
        for i in 0..est.marginals().len() {
            let s: f64 = est.table(i).iter().sum();
            assert!((s - 1.0).abs() < 0.2, "marginal {i} sums to {s}");
        }
    }

    #[test]
    fn point_mass_reconstruction() {
        let rows = vec![0b011u64; 60_000];
        let ds = BinaryDataset::new(3, rows.clone());
        let mech = MargRr::new(3, 2, 2.0);
        let est = run(&mech, &rows, 4);
        let tvd = mean_kway_tvd(&est, &ds, 2);
        assert!(tvd < 0.07, "tvd {tvd}");
    }

    #[test]
    fn unsampled_marginals_fall_back_to_uniform() {
        // A single user cannot cover all 28 marginals.
        let mech = MargRr::new(8, 2, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut agg = mech.aggregator();
        agg.absorb(&mech.encode(0, &mut rng));
        let est = agg.finish();
        let uniform_tables = est
            .marginals()
            .iter()
            .enumerate()
            .filter(|(i, _)| est.table(*i).iter().all(|v| (v - 0.25).abs() < 1e-12))
            .count();
        assert!(uniform_tables >= 27);
    }
}
