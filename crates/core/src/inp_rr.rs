//! `InpRR` — parallel randomized response on the full input vector (§4.2).
//!
//! Each user one-hot-encodes their record into `2^d` bits and perturbs
//! **every** bit with `ε/2`-randomized response (Fact 3.2 composes the two
//! affected positions to ε-LDP). The aggregator unbiases per-cell report
//! frequencies to reconstruct the full distribution; marginals are then
//! obtained by aggregation (Theorem 4.3: total variation error
//! `Õ(2^{(d+k)/2} / (ε√N))`).
//!
//! Communication is `2^d` bits per user, so the faithful client path is
//! `O(2^d)` per user. [`InpRr::run_fast`] instead samples the aggregate
//! per-cell 1-report counts directly from
//! `Binomial(n_cell, p₁) + Binomial(N − n_cell, p₀)` — identical in
//! distribution to summing the per-user reports (independence across users
//! and cells), validated by a statistical equivalence test below.

use crate::wire::{tag, Reader, WireError, Writer};
use crate::{Accumulator, FullDistributionEstimate};
use ldp_mechanisms::{UnaryEncoding, UnaryFlavor};
use ldp_sampling::{bernoulli_fixed, bernoulli_word, binomial, hash::splitmix64};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Configuration of the `InpRR` mechanism.
#[derive(Clone, Debug)]
pub struct InpRr {
    d: u32,
    ue: UnaryEncoding,
}

impl InpRr {
    /// ε-LDP instance over `d` attributes, using the Wang et al. optimized
    /// probabilities the paper's experiments adopt (§5.1).
    #[must_use]
    pub fn new(d: u32, eps: f64) -> Self {
        Self::with_flavor(d, eps, UnaryFlavor::Optimized)
    }

    /// Choose the unary-encoding probability flavor explicitly (the
    /// `ablation_oue` bench compares the two).
    #[must_use]
    pub fn with_flavor(d: u32, eps: f64, flavor: UnaryFlavor) -> Self {
        assert!(
            (1..=24).contains(&d),
            "InpRR materializes 2^d cells; need d ≤ 24"
        );
        InpRr {
            d,
            ue: UnaryEncoding::for_epsilon(eps, flavor),
        }
    }

    /// Domain dimensionality.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// The underlying per-bit primitive.
    #[must_use]
    pub fn encoding(&self) -> UnaryEncoding {
        self.ue
    }

    /// Faithful client: perturb the full one-hot vector, reporting the
    /// (typically dense) set of positions that flip to 1. `O(2^d)` cells,
    /// but the coins are drawn 64 lanes per RNG word (see
    /// [`perturbed_ones`](Self::perturbed_ones)), not one `gen_bool` per
    /// cell.
    pub fn encode<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> Vec<u32> {
        let mut ones = Vec::new();
        self.perturbed_ones(row, rng, |cell| ones.push(cell));
        ones
    }

    /// Walk the perturbed one-hot vector's 1-positions in ascending
    /// order, invoking `emit` for each. This is the shared core of the
    /// serial [`encode`](Self::encode) and the batched kernel: the
    /// `2^d − 1` background cells are i.i.d. `Bernoulli(p₀)` coins drawn
    /// 64 lanes per RNG word via [`bernoulli_word`] (quantized at 2⁻⁶⁴,
    /// finer than `gen_bool`'s 53-bit comparison), with the one true
    /// cell's bit overridden by a separate `Bernoulli(p₁)` draw. The
    /// schedule is deterministic in the RNG state, so per-user
    /// reproducibility (`user_rng(seed, i)`) is preserved.
    #[inline]
    pub fn perturbed_ones<R: Rng + ?Sized, F: FnMut(u32)>(
        &self,
        row: u64,
        rng: &mut R,
        mut emit: F,
    ) {
        let cells = 1u64 << self.d;
        debug_assert!(row < cells);
        let truth = rng.gen_bool(self.ue.p1());
        let p0 = bernoulli_fixed(self.ue.p0());
        let mut base = 0u64;
        while base < cells {
            let lanes = (cells - base).min(64) as u32;
            let mut word = bernoulli_word(rng, p0, lanes);
            if row >= base && row - base < u64::from(lanes) {
                let bit = 1u64 << (row - base);
                if truth {
                    word |= bit;
                } else {
                    word &= !bit;
                }
            }
            while word != 0 {
                let tz = word.trailing_zeros();
                emit(base as u32 + tz);
                word &= word - 1;
            }
            base += u64::from(lanes);
        }
    }

    /// Fresh aggregator.
    #[must_use]
    pub fn aggregator(&self) -> InpRrAggregator {
        InpRrAggregator {
            ue: self.ue,
            ones: vec![0u64; 1usize << self.d],
            n: 0,
            d: self.d,
        }
    }

    /// Exact-in-distribution aggregate simulation (see module docs): draws
    /// the final per-cell 1-report counts directly. `O(N + 2^d)`.
    #[must_use]
    pub fn run_fast(&self, rows: &[u64], seed: u64) -> FullDistributionEstimate {
        assert!(!rows.is_empty());
        let cells = 1usize << self.d;
        let mut true_counts = vec![0u64; cells];
        for &r in rows {
            true_counts[r as usize] += 1;
        }
        let n = rows.len() as u64;
        let mut rng = SmallRng::seed_from_u64(splitmix64(seed ^ 0x1A9C));
        let mut agg = self.aggregator();
        agg.n = rows.len();
        for (cell, ones) in agg.ones.iter_mut().enumerate() {
            let n1 = true_counts[cell];
            *ones = binomial(&mut rng, n1, self.ue.p1()) + binomial(&mut rng, n - n1, self.ue.p0());
        }
        agg.finish()
    }
}

/// Aggregator for [`InpRr`]: per-cell 1-report counts.
#[derive(Clone, Debug)]
pub struct InpRrAggregator {
    ue: UnaryEncoding,
    ones: Vec<u64>,
    n: usize,
    d: u32,
}

impl InpRrAggregator {
    /// Absorb one user's report (the positions reporting 1). Positions
    /// are folded into the 2^d-cell table (`pos mod 2^d`), so a corrupt
    /// wire report degrades to a miscount instead of panicking a
    /// collector thread; the encoder never produces an out-of-range
    /// position.
    #[inline]
    pub fn absorb(&mut self, report: &[u32]) {
        let mask = self.ones.len() - 1; // cell count is 2^d
        for &pos in report {
            self.ones[pos as usize & mask] += 1;
        }
        self.n += 1;
    }

    /// Batched ingest: the serial loop with the table borrow and cell
    /// mask hoisted out of the per-position hot loop (the masked index
    /// is provably in range, so the increments compile without bounds
    /// checks). State is byte-identical to absorbing each report in
    /// order.
    pub fn absorb_batch(&mut self, reports: &[Vec<u32>]) {
        let mask = self.ones.len() - 1;
        let ones = &mut self.ones[..];
        for report in reports {
            for &pos in report {
                ones[pos as usize & mask] += 1;
            }
        }
        self.n += reports.len();
    }

    /// Fold another shard's aggregator into this one.
    pub fn merge(&mut self, other: InpRrAggregator) {
        assert_eq!(self.ones.len(), other.ones.len());
        for (a, b) in self.ones.iter_mut().zip(other.ones) {
            *a += b;
        }
        self.n += other.n;
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Unbias every cell and produce the reconstructed full distribution.
    #[must_use]
    pub fn finish(self) -> FullDistributionEstimate {
        assert!(self.n > 0, "no reports absorbed");
        let n = self.n as f64;
        let dist = self
            .ones
            .iter()
            .map(|&c| self.ue.unbias_frequency(c as f64 / n))
            .collect();
        FullDistributionEstimate::new(self.d, dist)
    }
}

impl Accumulator for InpRrAggregator {
    type Report = Vec<u32>;
    type Output = FullDistributionEstimate;

    fn absorb(&mut self, report: &Vec<u32>) {
        InpRrAggregator::absorb(self, report);
    }

    fn absorb_batch(&mut self, reports: &[Vec<u32>]) {
        InpRrAggregator::absorb_batch(self, reports);
    }

    fn merge(&mut self, other: Self) {
        InpRrAggregator::merge(self, other);
    }

    fn report_count(&self) -> u64 {
        self.n as u64
    }

    fn finalize(self) -> FullDistributionEstimate {
        self.finish()
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_tag(tag::INP_RR);
        w.put_u32(self.d);
        w.put_f64(self.ue.p1());
        w.put_f64(self.ue.p0());
        w.put_u64(self.n as u64);
        w.put_u64_slice(&self.ones);
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::with_tag(bytes, tag::INP_RR)?;
        let d = r.get_u32()?;
        let p1 = r.get_f64()?;
        let p0 = r.get_f64()?;
        let n = r.get_u64()? as usize;
        let ones = r.get_u64_vec()?;
        r.finish()?;
        if !(1..=24).contains(&d) {
            return Err(WireError::Invalid("InpRR dimension"));
        }
        if !(0.0..=1.0).contains(&p1) || !(0.0..=1.0).contains(&p0) || p1 <= p0 {
            return Err(WireError::Invalid("InpRR probabilities"));
        }
        if ones.len() != 1usize << d {
            return Err(WireError::Invalid("InpRR cell-count length"));
        }
        Ok(InpRrAggregator {
            ue: UnaryEncoding::with_probabilities(p1, p0),
            ones,
            n,
            d,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MarginalEstimator;
    use ldp_bits::Mask;
    use ldp_data::BinaryDataset;
    use ldp_transform::total_variation_distance;
    use rand::rngs::StdRng;

    fn skewed_rows(d: u32, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // Mild skew toward low indices.
                let a = rng.gen_range(0..(1u64 << d));
                let b = rng.gen_range(0..(1u64 << d));
                a.min(b)
            })
            .collect()
    }

    #[test]
    fn faithful_path_reconstructs_distribution() {
        let mech = InpRr::new(3, 2.0);
        let rows = skewed_rows(3, 40_000, 1);
        let ds = BinaryDataset::new(3, rows.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let mut agg = mech.aggregator();
        for &row in &rows {
            let report = mech.encode(row, &mut rng);
            agg.absorb(&report);
        }
        let est = agg.finish();
        let tvd = total_variation_distance(&ds.full_distribution(), est.distribution());
        assert!(tvd < 0.05, "tvd {tvd}");
    }

    #[test]
    fn fast_path_reconstructs_distribution() {
        let mech = InpRr::new(4, 1.5);
        let rows = skewed_rows(4, 100_000, 3);
        let ds = BinaryDataset::new(4, rows.clone());
        let est = mech.run_fast(&rows, 4);
        let tvd = total_variation_distance(&ds.full_distribution(), est.distribution());
        assert!(tvd < 0.05, "tvd {tvd}");
    }

    /// Statistical equivalence of the faithful and fast paths: the mean
    /// and spread of the estimate of one (arbitrary) cell should agree
    /// across repetitions.
    #[test]
    fn fast_path_matches_faithful_distributionally() {
        let mech = InpRr::new(3, 1.1);
        let rows = skewed_rows(3, 2_000, 5);
        let reps = 120;
        let cell = 2usize;

        let mut faithful = Vec::with_capacity(reps);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..reps {
            let mut agg = mech.aggregator();
            for &row in &rows {
                let rep = mech.encode(row, &mut rng);
                agg.absorb(&rep);
            }
            faithful.push(agg.finish().distribution()[cell]);
        }
        let fast: Vec<f64> = (0..reps)
            .map(|r| mech.run_fast(&rows, 1000 + r as u64).distribution()[cell])
            .collect();

        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let sd = |v: &[f64]| {
            let m = mean(v);
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
        };
        let (mf, ms) = (mean(&faithful), mean(&fast));
        let (sf, ss) = (sd(&faithful), sd(&fast));
        // Means within 3 combined standard errors; spreads within 40%.
        let se = (sf * sf / reps as f64 + ss * ss / reps as f64).sqrt();
        assert!((mf - ms).abs() < 3.5 * se, "means {mf} vs {ms} (se {se})");
        assert!((sf / ss).max(ss / sf) < 1.4, "sds {sf} vs {ss}");
    }

    #[test]
    fn estimator_is_unbiased_per_cell() {
        // Mean estimate over repetitions converges to the truth.
        let mech = InpRr::new(2, 0.8);
        let rows = vec![0u64; 300]; // point mass at cell 0
        let reps = 300;
        let mut sums = [0.0f64; 4];
        for r in 0..reps {
            let est = mech.run_fast(&rows, r as u64);
            for (s, v) in sums.iter_mut().zip(est.distribution()) {
                *s += v;
            }
        }
        for (cell, s) in sums.iter().enumerate() {
            let mean = s / f64::from(reps);
            let truth = if cell == 0 { 1.0 } else { 0.0 };
            assert!((mean - truth).abs() < 0.05, "cell {cell}: {mean}");
        }
    }

    #[test]
    fn marginals_consistent_with_distribution() {
        let mech = InpRr::new(4, 1.1);
        let rows = skewed_rows(4, 50_000, 7);
        let est = mech.run_fast(&rows, 8);
        let beta = Mask::new(0b0101);
        let m = est.marginal(beta);
        // Marginal entries sum to the same total as the distribution
        // (≈ 1, up to unbiasing noise).
        let total: f64 = est.distribution().iter().sum();
        assert!((m.iter().sum::<f64>() - total).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "d ≤ 24")]
    fn rejects_huge_domains() {
        let _ = InpRr::new(30, 1.0);
    }
}
