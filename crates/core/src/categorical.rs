//! Direct categorical marginal release (§6.3, first approach).
//!
//! For non-binary attributes the paper notes that the sampling-based
//! mechanisms "generalize easily … since they can be applied to users
//! represented as sparse binary vectors": sample a k-subset of
//! categorical attributes, view the user's values on them as the single
//! 1 in a one-hot table of size `∏ r_i`, and release that cell through
//! generalized randomized response — the categorical `MargPS`. (The
//! Hadamard route instead goes through the §6.3 binary encoding, see
//! `ldp_data::categorical::CategoricalSchema` and the
//! `categorical_survey` example; the Efron–Stein alternative is in
//! `ldp_transform::efron_stein`.)

use ldp_bits::{masks_of_weight, Mask};
use ldp_mechanisms::GeneralizedRandomizedResponse;
use rand::Rng;

/// One user's report: the sampled attribute subset and the reported cell
/// of its marginal table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CatMargPsReport {
    /// Index of the sampled attribute subset in `masks_of_weight(d, k)`
    /// enumeration order.
    pub subset: u32,
    /// Reported (perturbed) cell in the subset's product domain.
    pub cell: u32,
}

/// Preferential sampling over k-way *categorical* marginals.
#[derive(Clone, Debug)]
pub struct CatMargPs {
    arities: Vec<usize>,
    k: u32,
    subsets: Vec<Mask>,
    /// One GRR instance per subset (cell counts differ across subsets).
    grrs: Vec<GeneralizedRandomizedResponse>,
}

impl CatMargPs {
    /// ε-LDP instance over attributes with the given arities (each ≥ 2),
    /// targeting marginals of exactly `k` attributes.
    #[must_use]
    pub fn new(arities: &[usize], k: u32, eps: f64) -> Self {
        let d = arities.len() as u32;
        assert!((1..=63).contains(&d) && k >= 1 && k <= d);
        assert!(arities.iter().all(|&r| r >= 2), "arities must be ≥ 2");
        let subsets: Vec<Mask> = masks_of_weight(d, k).collect();
        let grrs = subsets
            .iter()
            .map(|s| {
                let cells = table_len(arities, *s);
                GeneralizedRandomizedResponse::for_epsilon(eps, cells as u64)
            })
            .collect();
        CatMargPs {
            arities: arities.to_vec(),
            k,
            subsets,
            grrs,
        }
    }

    /// Number of categorical attributes.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.arities.len() as u32
    }

    /// Marginal order.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of k-way attribute subsets.
    #[must_use]
    pub fn subset_count(&self) -> usize {
        self.subsets.len()
    }

    /// Client: sample a subset, locate the user's cell, perturb via GRR.
    pub fn encode<R: Rng + ?Sized>(&self, record: &[usize], rng: &mut R) -> CatMargPsReport {
        assert_eq!(record.len(), self.arities.len());
        let si = rng.gen_range(0..self.subsets.len());
        let cell = cell_of(&self.arities, self.subsets[si], record);
        CatMargPsReport {
            subset: si as u32,
            cell: self.grrs[si].perturb(cell as u64, rng) as u32,
        }
    }

    /// Fresh aggregator.
    #[must_use]
    pub fn aggregator(&self) -> CatMargPsAggregator {
        let counts = self
            .subsets
            .iter()
            .map(|s| vec![0u64; table_len(&self.arities, *s)])
            .collect();
        CatMargPsAggregator {
            config: self.clone(),
            counts,
        }
    }
}

/// Aggregator for [`CatMargPs`].
#[derive(Clone, Debug)]
pub struct CatMargPsAggregator {
    config: CatMargPs,
    counts: Vec<Vec<u64>>,
}

impl CatMargPsAggregator {
    /// Absorb one report.
    pub fn absorb(&mut self, report: CatMargPsReport) {
        self.counts[report.subset as usize][report.cell as usize] += 1;
    }

    /// Fold another shard's aggregator into this one.
    pub fn merge(&mut self, other: CatMargPsAggregator) {
        for (ta, tb) in self.counts.iter_mut().zip(other.counts) {
            for (a, b) in ta.iter_mut().zip(tb) {
                *a += b;
            }
        }
    }

    /// Unbias every subset's histogram.
    #[must_use]
    pub fn finish(self) -> CatMarginalSetEstimate {
        let tables = self
            .counts
            .iter()
            .zip(&self.config.grrs)
            .map(|(hist, grr)| {
                let users: u64 = hist.iter().sum();
                if users == 0 {
                    vec![1.0 / hist.len() as f64; hist.len()]
                } else {
                    let observed: Vec<f64> =
                        hist.iter().map(|&c| c as f64 / users as f64).collect();
                    grr.unbias_histogram(&observed)
                }
            })
            .collect();
        CatMarginalSetEstimate {
            arities: self.config.arities,
            subsets: self.config.subsets,
            tables,
        }
    }
}

/// Estimated k-way categorical marginal tables.
#[derive(Clone, Debug)]
pub struct CatMarginalSetEstimate {
    arities: Vec<usize>,
    subsets: Vec<Mask>,
    tables: Vec<Vec<f64>>,
}

impl CatMarginalSetEstimate {
    /// The marginal over an attribute subset (must be one of the
    /// collected k-way subsets), indexed mixed-radix with the
    /// lowest-numbered attribute fastest.
    #[must_use]
    pub fn marginal(&self, attrs: &[u32]) -> &[f64] {
        let mask = Mask::from_attrs(attrs);
        let i = self
            .subsets
            .binary_search_by_key(&mask.bits(), |m| m.bits())
            .expect("subset was not collected");
        &self.tables[i]
    }

    /// Arity of one attribute.
    #[must_use]
    pub fn arity(&self, attr: u32) -> usize {
        self.arities[attr as usize]
    }
}

/// Number of cells of the marginal over `subset`.
fn table_len(arities: &[usize], subset: Mask) -> usize {
    subset.attrs().map(|a| arities[a as usize]).product()
}

/// Mixed-radix cell index of `record` within the marginal over `subset`
/// (lowest-numbered attribute fastest).
fn cell_of(arities: &[usize], subset: Mask, record: &[usize]) -> usize {
    let mut idx = 0usize;
    let mut stride = 1usize;
    for a in subset.attrs() {
        let v = record[a as usize];
        debug_assert!(v < arities[a as usize]);
        idx += v * stride;
        stride *= arities[a as usize];
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_sampling::AliasTable;
    use rand::{rngs::StdRng, SeedableRng};

    fn independent_records(dists: &[Vec<f64>], n: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let tables: Vec<AliasTable> = dists.iter().map(|w| AliasTable::new(w)).collect();
        (0..n)
            .map(|_| tables.iter().map(|t| t.sample(&mut rng)).collect())
            .collect()
    }

    fn exact_pair(records: &[Vec<usize>], arities: &[usize], a: usize, b: usize) -> Vec<f64> {
        let mut t = vec![0.0; arities[a] * arities[b]];
        for r in records {
            t[r[a] + arities[a] * r[b]] += 1.0;
        }
        t.iter_mut().for_each(|v| *v /= records.len() as f64);
        t
    }

    #[test]
    fn reconstructs_categorical_pairs() {
        let arities = [3usize, 4, 2, 5];
        let dists = vec![
            vec![0.5, 0.3, 0.2],
            vec![0.4, 0.3, 0.2, 0.1],
            vec![0.7, 0.3],
            vec![0.3, 0.25, 0.2, 0.15, 0.1],
        ];
        let records = independent_records(&dists, 300_000, 0);
        let mech = CatMargPs::new(&arities, 2, 1.4);
        assert_eq!(mech.subset_count(), 6);
        let mut rng = StdRng::seed_from_u64(1);
        let mut agg = mech.aggregator();
        for r in &records {
            agg.absorb(mech.encode(r, &mut rng));
        }
        let est = agg.finish();
        for (a, b) in [(0u32, 1u32), (0, 3), (2, 3)] {
            let got = est.marginal(&[a, b]);
            let truth = exact_pair(&records, &arities, a as usize, b as usize);
            let tvd: f64 = got
                .iter()
                .zip(&truth)
                .map(|(x, y)| (x - y).abs())
                .sum::<f64>()
                / 2.0;
            assert!(tvd < 0.05, "pair ({a},{b}): tvd {tvd}");
        }
    }

    #[test]
    fn tables_sum_to_one() {
        let arities = [3usize, 3, 3];
        let dists = vec![vec![1.0, 1.0, 1.0]; 3];
        let records = independent_records(&dists, 20_000, 2);
        let mech = CatMargPs::new(&arities, 2, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut agg = mech.aggregator();
        for r in &records {
            agg.absorb(mech.encode(r, &mut rng));
        }
        let est = agg.finish();
        for attrs in [[0u32, 1], [0, 2], [1, 2]] {
            let s: f64 = est.marginal(&attrs).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{attrs:?}: {s}");
        }
    }

    #[test]
    fn per_subset_domain_sizes() {
        let mech = CatMargPs::new(&[2, 3, 4], 2, 1.0);
        // Subsets in mask order: {0,1}=6 cells, {0,2}=8, {1,2}=12.
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..2000 {
            let rep = mech.encode(&[1, 2, 3], &mut rng);
            let limit = match rep.subset {
                0 => 6,
                1 => 8,
                2 => 12,
                _ => panic!("unexpected subset"),
            };
            assert!(rep.cell < limit);
        }
    }

    #[test]
    #[should_panic(expected = "subset was not collected")]
    fn rejects_uncollected_subsets() {
        let mech = CatMargPs::new(&[2, 2, 2], 2, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut agg = mech.aggregator();
        agg.absorb(mech.encode(&[0, 1, 0], &mut rng));
        let est = agg.finish();
        let _ = est.marginal(&[0]); // 1-way was not collected
    }

    #[test]
    fn merge_equals_sequential() {
        let mech = CatMargPs::new(&[3, 3], 2, 1.0);
        let mut rng = StdRng::seed_from_u64(6);
        let reports: Vec<CatMargPsReport> = (0..2000)
            .map(|i| mech.encode(&[i % 3, (i / 3) % 3], &mut rng))
            .collect();
        let mut whole = mech.aggregator();
        let mut a = mech.aggregator();
        let mut b = mech.aggregator();
        for (i, &r) in reports.iter().enumerate() {
            whole.absorb(r);
            if i % 2 == 0 {
                a.absorb(r);
            } else {
                b.absorb(r);
            }
        }
        a.merge(b);
        assert_eq!(
            a.finish().marginal(&[0, 1]),
            whole.finish().marginal(&[0, 1])
        );
    }
}
