//! `InpPS` — preferential sampling of the input index (§4.2).
//!
//! Each user reports a single index from `[0, 2^d)` through generalized
//! randomized response: the true index with probability
//! `p_s = (1 + (2^d − 1)e^{−ε})^{−1}`, a uniform lie otherwise. The
//! aggregator unbiases the report histogram (§4.1) to reconstruct the full
//! distribution. Theorem 4.4: total variation error
//! `Õ(2^{d + k/2} / (ε√N))` — the `2^d` factor makes this method decay
//! rapidly with dimensionality, which Figure 4 confirms.

use crate::wire::{tag, Reader, WireError, Writer};
use crate::{Accumulator, FullDistributionEstimate};
use ldp_mechanisms::GeneralizedRandomizedResponse;
use rand::Rng;

/// Configuration of the `InpPS` mechanism.
#[derive(Clone, Debug)]
pub struct InpPs {
    d: u32,
    grr: GeneralizedRandomizedResponse,
}

impl InpPs {
    /// ε-LDP instance over `d` attributes.
    #[must_use]
    pub fn new(d: u32, eps: f64) -> Self {
        assert!(
            (1..=26).contains(&d),
            "InpPS materializes 2^d cells; need d ≤ 26"
        );
        InpPs {
            d,
            grr: GeneralizedRandomizedResponse::for_epsilon(eps, 1u64 << d),
        }
    }

    /// Domain dimensionality.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// The underlying primitive.
    #[must_use]
    pub fn primitive(&self) -> GeneralizedRandomizedResponse {
        self.grr
    }

    /// Client: one perturbed index (`d` bits on the wire).
    #[inline]
    pub fn encode<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> u64 {
        self.grr.perturb(row, rng)
    }

    /// Fresh aggregator.
    #[must_use]
    pub fn aggregator(&self) -> InpPsAggregator {
        InpPsAggregator {
            grr: self.grr,
            counts: vec![0u64; 1usize << self.d],
            d: self.d,
        }
    }
}

/// Aggregator for [`InpPs`]: a histogram of reported indices.
#[derive(Clone, Debug)]
pub struct InpPsAggregator {
    grr: GeneralizedRandomizedResponse,
    counts: Vec<u64>,
    d: u32,
}

impl InpPsAggregator {
    /// Absorb one reported index. Indices are folded into the
    /// 2^d-cell histogram (`report mod 2^d`), so a corrupt wire report
    /// degrades to a miscount instead of panicking a collector thread;
    /// the encoder never produces an out-of-range index.
    #[inline]
    pub fn absorb(&mut self, report: u64) {
        let mask = self.counts.len() as u64 - 1; // cell count is 2^d
        self.counts[(report & mask) as usize] += 1;
    }

    /// Batched ingest: the serial loop with the histogram borrow and
    /// cell mask hoisted (the masked index is provably in range, so the
    /// increments compile without bounds checks). State is
    /// byte-identical to absorbing each report in order.
    pub fn absorb_batch(&mut self, reports: &[u64]) {
        let mask = self.counts.len() as u64 - 1;
        let counts = &mut self.counts[..];
        for &report in reports {
            counts[(report & mask) as usize] += 1;
        }
    }

    /// Fold another shard's aggregator into this one.
    pub fn merge(&mut self, other: InpPsAggregator) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn n(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// Unbias the histogram into the reconstructed full distribution.
    #[must_use]
    pub fn finish(self) -> FullDistributionEstimate {
        let n = self.n();
        assert!(n > 0, "no reports absorbed");
        let observed: Vec<f64> = self.counts.iter().map(|&c| c as f64 / n as f64).collect();
        FullDistributionEstimate::new(self.d, self.grr.unbias_histogram(&observed))
    }
}

impl Accumulator for InpPsAggregator {
    type Report = u64;
    type Output = FullDistributionEstimate;

    fn absorb(&mut self, report: &u64) {
        InpPsAggregator::absorb(self, *report);
    }

    fn absorb_batch(&mut self, reports: &[u64]) {
        InpPsAggregator::absorb_batch(self, reports);
    }

    fn merge(&mut self, other: Self) {
        InpPsAggregator::merge(self, other);
    }

    fn report_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn finalize(self) -> FullDistributionEstimate {
        self.finish()
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_tag(tag::INP_PS);
        w.put_u32(self.d);
        w.put_f64(self.grr.truth_probability());
        w.put_u64_slice(&self.counts);
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::with_tag(bytes, tag::INP_PS)?;
        let d = r.get_u32()?;
        let ps = r.get_f64()?;
        let counts = r.get_u64_vec()?;
        r.finish()?;
        if !(1..=26).contains(&d) {
            return Err(WireError::Invalid("InpPS dimension"));
        }
        let m = 1u64 << d;
        if !(ps > 1.0 / m as f64 && ps < 1.0) {
            return Err(WireError::Invalid("InpPS truth probability"));
        }
        if counts.len() != 1usize << d {
            return Err(WireError::Invalid("InpPS histogram length"));
        }
        Ok(InpPsAggregator {
            grr: GeneralizedRandomizedResponse::with_truth_probability(m, ps),
            counts,
            d,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MarginalEstimator;
    use ldp_bits::Mask;
    use ldp_data::BinaryDataset;
    use ldp_transform::total_variation_distance;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn reconstructs_small_domain() {
        let mech = InpPs::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        let rows: Vec<u64> = (0..120_000).map(|i| (i % 8) as u64 % 5).collect();
        let ds = BinaryDataset::new(3, rows.clone());
        let mut agg = mech.aggregator();
        for &row in &rows {
            agg.absorb(mech.encode(row, &mut rng));
        }
        let est = agg.finish();
        let tvd = total_variation_distance(&ds.full_distribution(), est.distribution());
        assert!(tvd < 0.03, "tvd {tvd}");
    }

    #[test]
    fn estimates_sum_to_one() {
        // The unbiasing is affine in the observed frequencies, so the
        // reconstructed distribution sums to exactly 1.
        let mech = InpPs::new(4, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<u64> = (0..10_000).map(|i| (i % 16) as u64).collect();
        let mut agg = mech.aggregator();
        for &row in &rows {
            agg.absorb(mech.encode(row, &mut rng));
        }
        let est = agg.finish();
        assert!((est.distribution().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degrades_with_dimension() {
        // The hallmark InpPS failure mode (§5.2): for larger d the truth
        // probability becomes tiny and the signal washes out. Compare the
        // same population size at d = 4 vs d = 10 on a point-mass input.
        let n = 50_000;
        let mut tvds = Vec::new();
        for d in [4u32, 10] {
            let mech = InpPs::new(d, 1.1);
            let mut rng = StdRng::seed_from_u64(2);
            let rows = vec![1u64; n];
            let ds = BinaryDataset::new(d, rows.clone());
            let mut agg = mech.aggregator();
            for &row in &rows {
                agg.absorb(mech.encode(row, &mut rng));
            }
            let est = agg.finish();
            let beta = Mask::new(0b11);
            tvds.push(total_variation_distance(
                &ds.true_marginal(beta),
                &est.marginal(beta),
            ));
        }
        assert!(
            tvds[1] > 3.0 * tvds[0],
            "expected sharp degradation: {tvds:?}"
        );
    }

    #[test]
    fn merge_equals_sequential() {
        let mech = InpPs::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let reports: Vec<u64> = (0..1000).map(|i| mech.encode(i % 8, &mut rng)).collect();
        let mut all = mech.aggregator();
        for &r in &reports {
            all.absorb(r);
        }
        let mut a = mech.aggregator();
        let mut b = mech.aggregator();
        for (i, &r) in reports.iter().enumerate() {
            if i % 2 == 0 {
                a.absorb(r);
            } else {
                b.absorb(r);
            }
        }
        a.merge(b);
        assert_eq!(a.n(), all.n());
        assert_eq!(a.finish().distribution(), all.finish().distribution());
    }
}
