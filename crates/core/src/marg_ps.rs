//! `MargPS` — preferential sampling within one random k-way marginal
//! (§4.3).
//!
//! Client: sample a marginal `β` uniformly, locate the single 1 in the
//! user's marginal table `C_β(t_i)` (cell `j_i ∧ β`), and release that
//! cell index through generalized randomized response over the `2^k`
//! cells (`d + k` bits). Aggregator: per marginal, unbias the reported
//! cell histogram over the users who sampled it. Error
//! `Õ(2^{3k/2} d^{k/2} / (ε√N))` (Lemma 4.6) — worse than `MargRR`
//! asymptotically by `2^{k/2}` but empirically strong for small `k`, a
//! point the paper's Figure 4 discussion makes.

use crate::wire::{tag, Reader, WireError, Writer};
use crate::{Accumulator, MarginalSetEstimate};
use ldp_bits::{compress, masks_of_weight, Mask};
use ldp_mechanisms::GeneralizedRandomizedResponse;
use rand::Rng;

/// One user's report: the sampled marginal and the reported cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MargPsReport {
    /// Index of the sampled marginal in `masks_of_weight(d, k)` order.
    pub marginal: u32,
    /// Reported (perturbed) cell index in `[0, 2^k)`.
    pub cell: u16,
}

/// Configuration of the `MargPS` mechanism.
#[derive(Clone, Debug)]
pub struct MargPs {
    d: u32,
    k: u32,
    marginals: Vec<Mask>,
    grr: GeneralizedRandomizedResponse,
}

impl MargPs {
    /// ε-LDP instance targeting k-way marginals over `d` attributes.
    #[must_use]
    pub fn new(d: u32, k: u32, eps: f64) -> Self {
        assert!(k >= 1 && k <= d && k <= 16, "need 1 ≤ k ≤ min(d, 16)");
        MargPs {
            d,
            k,
            marginals: masks_of_weight(d, k).collect(),
            grr: GeneralizedRandomizedResponse::for_epsilon(eps, 1u64 << k),
        }
    }

    /// Domain dimensionality.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Marginal order.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of k-way marginals `C(d,k)`.
    #[must_use]
    pub fn marginal_count(&self) -> usize {
        self.marginals.len()
    }

    /// The underlying primitive.
    #[must_use]
    pub fn primitive(&self) -> GeneralizedRandomizedResponse {
        self.grr
    }

    /// Client: sample a marginal and release the perturbed cell.
    #[inline]
    pub fn encode<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> MargPsReport {
        let mi = rng.gen_range(0..self.marginals.len());
        let beta = self.marginals[mi];
        let cell = compress(row, beta.bits());
        MargPsReport {
            marginal: mi as u32,
            cell: self.grr.perturb(cell, rng) as u16,
        }
    }

    /// Fresh aggregator.
    #[must_use]
    pub fn aggregator(&self) -> MargPsAggregator {
        MargPsAggregator {
            grr: self.grr,
            d: self.d,
            k: self.k,
            counts: vec![0u64; (1usize << self.k) * self.marginals.len()],
        }
    }
}

/// Aggregator for [`MargPs`]: per-marginal reported-cell histograms,
/// stored flat (marginal-major) so the per-report hot loop touches one
/// contiguous table instead of chasing a nested `Vec`.
#[derive(Clone, Debug)]
pub struct MargPsAggregator {
    grr: GeneralizedRandomizedResponse,
    d: u32,
    k: u32,
    counts: Vec<u64>,
}

impl MargPsAggregator {
    /// Absorb one report. Cell indices are folded into the sampled
    /// marginal's 2^k-cell histogram (`cell mod 2^k`), so a corrupt
    /// wire report degrades to a miscount instead of panicking a
    /// collector thread; a report naming a marginal outside `C(d,k)`
    /// still panics, as before.
    #[inline]
    pub fn absorb(&mut self, report: MargPsReport) {
        let cells = 1usize << self.k;
        let idx = report.marginal as usize * cells + (report.cell as usize & (cells - 1));
        self.counts[idx] += 1;
    }

    /// Batched ingest: the serial loop with the flat histogram borrow
    /// and cell mask hoisted. State is byte-identical to absorbing each
    /// report in order.
    pub fn absorb_batch(&mut self, reports: &[MargPsReport]) {
        let cells = 1usize << self.k;
        let mask = cells - 1;
        let counts = &mut self.counts[..];
        for report in reports {
            // Named invariant before the raw index: the cell offset is
            // masked into range, so the marginal index is the only way
            // this kernel can leave the flat histogram.
            debug_assert!(
                report.marginal as usize * cells < counts.len(),
                "report marginal {} outside the C(d,k) histogram set",
                report.marginal
            );
            counts[report.marginal as usize * cells + (report.cell as usize & mask)] += 1;
        }
    }

    /// Fold another shard's aggregator into this one.
    pub fn merge(&mut self, other: MargPsAggregator) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn n(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// Unbias each marginal's histogram. Marginals nobody sampled fall
    /// back to the uniform table.
    #[must_use]
    pub fn finish(self) -> MarginalSetEstimate {
        let cells = 1usize << self.k;
        let uniform = 1.0 / cells as f64;
        let tables = self
            .counts
            .chunks_exact(cells)
            .map(|hist| {
                let users: u64 = hist.iter().sum();
                if users == 0 {
                    vec![uniform; cells]
                } else {
                    let observed: Vec<f64> =
                        hist.iter().map(|&c| c as f64 / users as f64).collect();
                    self.grr.unbias_histogram(&observed)
                }
            })
            .collect();
        MarginalSetEstimate::new(self.d, self.k, tables)
    }
}

impl Accumulator for MargPsAggregator {
    type Report = MargPsReport;
    type Output = MarginalSetEstimate;

    fn absorb(&mut self, report: &MargPsReport) {
        MargPsAggregator::absorb(self, *report);
    }

    fn absorb_batch(&mut self, reports: &[MargPsReport]) {
        MargPsAggregator::absorb_batch(self, reports);
    }

    fn merge(&mut self, other: Self) {
        MargPsAggregator::merge(self, other);
    }

    fn report_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn finalize(self) -> MarginalSetEstimate {
        self.finish()
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_tag(tag::MARG_PS);
        w.put_u32(self.d);
        w.put_u32(self.k);
        w.put_f64(self.grr.truth_probability());
        w.put_u64_slice(&self.counts);
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::with_tag(bytes, tag::MARG_PS)?;
        let d = r.get_u32()?;
        let k = r.get_u32()?;
        let ps = r.get_f64()?;
        let flat = r.get_u64_vec()?;
        r.finish()?;
        if !(1..=63).contains(&d) || k < 1 || k > d || k > 16 {
            return Err(WireError::Invalid("MargPS dimensions"));
        }
        let cells = 1u64 << k;
        if !(ps > 1.0 / cells as f64 && ps < 1.0) {
            return Err(WireError::Invalid("MargPS truth probability"));
        }
        // O(k) count and checked width math — never enumerate C(d,k)
        // masks or trust a product on untrusted dims.
        let marginals = ldp_bits::binomial(u64::from(d), u64::from(k));
        let expected = marginals
            .checked_mul(cells)
            .ok_or(WireError::Invalid("MargPS table shape"))?;
        if flat.len() as u64 != expected {
            return Err(WireError::Invalid("MargPS table shape"));
        }
        Ok(MargPsAggregator {
            grr: GeneralizedRandomizedResponse::with_truth_probability(cells, ps),
            d,
            k,
            counts: flat,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mean_kway_tvd, MarginalEstimator};
    use ldp_data::{movielens::MovieLensGenerator, taxi::TaxiGenerator, BinaryDataset};
    use rand::{rngs::StdRng, SeedableRng};

    fn run(mech: &MargPs, rows: &[u64], seed: u64) -> MarginalSetEstimate {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agg = mech.aggregator();
        for &row in rows {
            agg.absorb(mech.encode(row, &mut rng));
        }
        agg.finish()
    }

    #[test]
    fn reconstructs_marginals() {
        let mut rng = StdRng::seed_from_u64(0);
        let ds = MovieLensGenerator::new(6).generate(150_000, &mut rng);
        let mech = MargPs::new(6, 2, 1.1);
        let est = run(&mech, ds.rows(), 1);
        let tvd = mean_kway_tvd(&est, &ds, 2);
        assert!(tvd < 0.1, "mean 2-way tvd {tvd}");
    }

    #[test]
    fn tables_sum_to_one_exactly() {
        // GRR histogram unbiasing preserves total mass exactly.
        let mut rng = StdRng::seed_from_u64(2);
        let ds = TaxiGenerator::default().generate(50_000, &mut rng);
        let mech = MargPs::new(8, 2, 1.1);
        let est = run(&mech, ds.rows(), 3);
        for i in 0..est.marginals().len() {
            let s: f64 = est.table(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "marginal {i} sums to {s}");
        }
    }

    #[test]
    fn beats_inp_ps_at_moderate_dimension() {
        // The motivating comparison of §4.3/§5.2: for d = 8, k = 2,
        // MargPS works over 2^2-cell domains with ~N/28 users each, while
        // InpPS must cover 2^8 cells — MargPS should be clearly better.
        let mut rng = StdRng::seed_from_u64(4);
        let ds = TaxiGenerator::default().generate(100_000, &mut rng);
        let marg = run(&MargPs::new(8, 2, 1.1), ds.rows(), 5);
        let tvd_marg = mean_kway_tvd(&marg, &ds, 2);

        let inp = crate::InpPs::new(8, 1.1);
        let mut agg = inp.aggregator();
        let mut rng2 = StdRng::seed_from_u64(6);
        for &row in ds.rows() {
            agg.absorb(inp.encode(row, &mut rng2));
        }
        let tvd_inp = mean_kway_tvd(&agg.finish(), &ds, 2);
        assert!(
            tvd_marg < tvd_inp / 2.0,
            "MargPS {tvd_marg} vs InpPS {tvd_inp}"
        );
    }

    #[test]
    fn k1_matches_attribute_means() {
        let rows: Vec<u64> = (0..80_000u64).map(|i| u64::from(i % 5 == 0)).collect();
        let ds = BinaryDataset::new(1, rows.clone());
        let mech = MargPs::new(1, 1, 1.5);
        let est = run(&mech, &rows, 7);
        let m = est.marginal(ldp_bits::Mask::full(1));
        let truth = ds.true_marginal(ldp_bits::Mask::full(1));
        assert!((m[1] - truth[1]).abs() < 0.03, "{} vs {}", m[1], truth[1]);
    }
}
