//! `InpHT` — randomized response on one sampled low-weight Hadamard
//! coefficient of the input (§4.2, Algorithms 1 & 2). The paper's
//! headline mechanism: best accuracy (Theorem 4.5,
//! `Õ(2^{k/2}√T / (ε√N))` with `T = Σ_{ℓ≤k} C(d,ℓ)`), and `d + 1` bits of
//! communication.
//!
//! Client (Algorithm 1): sample a coefficient index `ℓ` uniformly from the
//! set `T` of nonzero masks of weight ≤ k; the user's scaled coefficient
//! is `(−1)^{⟨j, ℓ⟩} ∈ {−1, +1}`; release it through ε-randomized
//! response together with `ℓ`.
//!
//! Aggregator (Algorithm 2): per coefficient, average the unbiased
//! `±1/(2p−1)` reports over the users who sampled it; reconstruct any
//! k-way marginal from the 2^k relevant coefficients via Lemma 3.7.

use crate::wire::{tag, Reader, WireError, Writer};
use crate::{Accumulator, HadamardEstimate};
use ldp_bits::{pm_one, WeightRank};
use ldp_mechanisms::BinaryRandomizedResponse;
use rand::Rng;

/// One user's report: which coefficient, and the perturbed sign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InpHtReport {
    /// Dense index of the sampled coefficient in the `WeightRank` order.
    pub coefficient: u32,
    /// The randomized-response output for the scaled coefficient.
    pub sign_positive: bool,
}

/// Configuration of the `InpHT` mechanism.
#[derive(Clone, Debug)]
pub struct InpHt {
    indexer: WeightRank,
    rr: BinaryRandomizedResponse,
}

impl InpHt {
    /// ε-LDP instance over `d` attributes supporting all marginals of
    /// order ≤ `k`.
    #[must_use]
    pub fn new(d: u32, k: u32, eps: f64) -> Self {
        assert!(k >= 1 && k <= d, "need 1 ≤ k ≤ d");
        InpHt {
            indexer: WeightRank::new(d, k),
            rr: BinaryRandomizedResponse::for_epsilon(eps),
        }
    }

    /// Domain dimensionality.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.indexer.d()
    }

    /// Maximum marginal order.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.indexer.k()
    }

    /// The number of candidate coefficients `|T|`.
    #[must_use]
    pub fn coefficient_count(&self) -> usize {
        self.indexer.len()
    }

    /// The underlying RR primitive.
    #[must_use]
    pub fn primitive(&self) -> BinaryRandomizedResponse {
        self.rr
    }

    /// Client (Algorithm 1): sample a coefficient, evaluate the user's
    /// scaled coefficient `(−1)^{⟨j,ℓ⟩}`, perturb with ε-RR.
    #[inline]
    pub fn encode<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> InpHtReport {
        let idx = rng.gen_range(0..self.indexer.len());
        let alpha = self.indexer.mask(idx);
        let theta = pm_one(row, alpha.bits());
        let noisy = self.rr.perturb_sign(theta, rng);
        InpHtReport {
            coefficient: idx as u32,
            sign_positive: noisy > 0.0,
        }
    }

    /// Fresh aggregator.
    #[must_use]
    pub fn aggregator(&self) -> InpHtAggregator {
        InpHtAggregator {
            rr: self.rr,
            indexer: self.indexer.clone(),
            sums: vec![0i64; self.indexer.len()],
            counts: vec![0u64; self.indexer.len()],
        }
    }
}

/// Aggregator for [`InpHt`] (Algorithm 2): per-coefficient sign sums.
#[derive(Clone, Debug)]
pub struct InpHtAggregator {
    rr: BinaryRandomizedResponse,
    indexer: WeightRank,
    sums: Vec<i64>,
    counts: Vec<u64>,
}

impl InpHtAggregator {
    /// Absorb one report.
    #[inline]
    pub fn absorb(&mut self, report: InpHtReport) {
        let i = report.coefficient as usize;
        self.sums[i] += if report.sign_positive { 1 } else { -1 };
        self.counts[i] += 1;
    }

    /// Batched ingest (Algorithm 2's inner loop over a report buffer):
    /// lane-accumulated `i64` sign sums with the table borrows hoisted
    /// out of the hot loop. State is byte-identical to absorbing each
    /// report in order.
    pub fn absorb_batch(&mut self, reports: &[InpHtReport]) {
        let sums = &mut self.sums[..];
        let counts = &mut self.counts[..];
        for r in reports {
            let i = r.coefficient as usize;
            sums[i] += if r.sign_positive { 1 } else { -1 };
            counts[i] += 1;
        }
    }

    /// Fold another shard's aggregator into this one.
    pub fn merge(&mut self, other: InpHtAggregator) {
        for (a, b) in self.sums.iter_mut().zip(other.sums) {
            *a += b;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn n(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// Unbias and average each coefficient. Coefficients nobody sampled
    /// (possible only for tiny populations) estimate to 0 — the value of
    /// an uninformative coefficient.
    #[must_use]
    pub fn finish(self) -> HadamardEstimate {
        let coeffs = self
            .sums
            .iter()
            .zip(&self.counts)
            .map(|(&s, &c)| {
                if c == 0 {
                    0.0
                } else {
                    self.rr.unbias_sign(s as f64 / c as f64)
                }
            })
            .collect();
        HadamardEstimate::new(self.indexer, coeffs)
    }
}

impl Accumulator for InpHtAggregator {
    type Report = InpHtReport;
    type Output = HadamardEstimate;

    fn absorb(&mut self, report: &InpHtReport) {
        InpHtAggregator::absorb(self, *report);
    }

    fn absorb_batch(&mut self, reports: &[InpHtReport]) {
        InpHtAggregator::absorb_batch(self, reports);
    }

    fn merge(&mut self, other: Self) {
        InpHtAggregator::merge(self, other);
    }

    fn report_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn finalize(self) -> HadamardEstimate {
        self.finish()
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_tag(tag::INP_HT);
        w.put_u32(self.indexer.d());
        w.put_u32(self.indexer.k());
        w.put_f64(self.rr.keep_probability());
        w.put_i64_slice(&self.sums);
        w.put_u64_slice(&self.counts);
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::with_tag(bytes, tag::INP_HT)?;
        let d = r.get_u32()?;
        let k = r.get_u32()?;
        let p = r.get_f64()?;
        let sums = r.get_i64_vec()?;
        let counts = r.get_u64_vec()?;
        r.finish()?;
        if !(1..=63).contains(&d) || k < 1 || k > d {
            return Err(WireError::Invalid("InpHT dimensions"));
        }
        if !(p > 0.5 && p < 1.0) {
            return Err(WireError::Invalid("InpHT keep probability"));
        }
        let indexer = WeightRank::new(d, k);
        if sums.len() != indexer.len() || counts.len() != indexer.len() {
            return Err(WireError::Invalid("InpHT coefficient-table length"));
        }
        Ok(InpHtAggregator {
            rr: BinaryRandomizedResponse::with_keep_probability(p),
            indexer,
            sums,
            counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mean_kway_tvd, MarginalEstimator};
    use ldp_bits::Mask;
    use ldp_data::{movielens::MovieLensGenerator, BinaryDataset};
    use ldp_transform::total_variation_distance;
    use rand::{rngs::StdRng, SeedableRng};

    fn run(mech: &InpHt, rows: &[u64], seed: u64) -> HadamardEstimate {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agg = mech.aggregator();
        for &row in rows {
            agg.absorb(mech.encode(row, &mut rng));
        }
        agg.finish()
    }

    #[test]
    fn coefficient_count_matches_theory() {
        let mech = InpHt::new(8, 2, 1.1);
        assert_eq!(mech.coefficient_count(), 36); // 8 + 28
        let mech = InpHt::new(16, 3, 1.1);
        assert_eq!(mech.coefficient_count(), 696);
    }

    #[test]
    fn reconstructs_marginals_accurately() {
        let mut rng = StdRng::seed_from_u64(0);
        let ds = MovieLensGenerator::new(8).generate(200_000, &mut rng);
        let mech = InpHt::new(8, 2, 1.1);
        let est = run(&mech, ds.rows(), 1);
        let tvd = mean_kway_tvd(&est, &ds, 2);
        assert!(tvd < 0.08, "mean 2-way tvd {tvd}");
    }

    #[test]
    fn coefficients_are_unbiased() {
        // Point mass at row 0b101 over d=3: every scaled coefficient is
        // (−1)^{⟨α, 0b101⟩}, known exactly.
        let rows = vec![0b101u64; 40_000];
        let mech = InpHt::new(3, 3, 1.5);
        let est = run(&mech, &rows, 2);
        for alpha_bits in 1u64..8 {
            let alpha = Mask::new(alpha_bits);
            let truth = pm_one(0b101, alpha_bits);
            let got = est.coefficient(alpha);
            assert!(
                (got - truth).abs() < 0.15,
                "alpha={alpha}: {got} vs {truth}"
            );
        }
    }

    #[test]
    fn error_shrinks_with_population() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = MovieLensGenerator::new(6).generate(262_144, &mut rng);
        let mech = InpHt::new(6, 2, 1.1);
        let small = BinaryDataset::new(6, ds.rows()[..16_384].to_vec());
        let est_small = run(&mech, small.rows(), 4);
        let est_big = run(&mech, ds.rows(), 4);
        let tvd_small = mean_kway_tvd(&est_small, &small, 2);
        let tvd_big = mean_kway_tvd(&est_big, &ds, 2);
        // 16× the population → roughly 4× less error; require at least 2×.
        assert!(
            tvd_big < tvd_small / 2.0,
            "small {tvd_small} vs big {tvd_big}"
        );
    }

    #[test]
    fn one_way_marginal_reconstruction() {
        let rows: Vec<u64> = (0..10_000u64).map(|i| u64::from(i % 10 < 3)).collect();
        let ds = BinaryDataset::new(1, rows.clone());
        let mech = InpHt::new(1, 1, 2.0);
        let est = run(&mech, &rows, 5);
        let m = est.marginal(Mask::full(1));
        let truth = ds.true_marginal(Mask::full(1));
        assert!(total_variation_distance(&m, &truth) < 0.05);
    }

    #[test]
    fn merge_equals_sequential() {
        let mech = InpHt::new(5, 2, 1.1);
        let mut rng = StdRng::seed_from_u64(6);
        let reports: Vec<InpHtReport> = (0..2000u64)
            .map(|i| mech.encode(i % 32, &mut rng))
            .collect();
        let mut whole = mech.aggregator();
        let mut a = mech.aggregator();
        let mut b = mech.aggregator();
        for (i, &r) in reports.iter().enumerate() {
            whole.absorb(r);
            if i < 1000 {
                a.absorb(r);
            } else {
                b.absorb(r);
            }
        }
        a.merge(b);
        let (ca, cw) = (a.finish(), whole.finish());
        for bits in 1u64..32 {
            let m = Mask::new(bits);
            if m.weight() <= 2 {
                assert_eq!(ca.coefficient(m), cw.coefficient(m));
            }
        }
    }
}
