//! Parallel simulation of a user population.
//!
//! Each user runs their client protocol independently, so the population
//! loop shards cleanly: every thread owns a private aggregator and a
//! deterministically-seeded RNG, and partial aggregators are merged at the
//! end. With a fixed `seed` the result is reproducible regardless of how
//! work is scheduled (shard boundaries are deterministic).

use ldp_sampling::hash::splitmix64;
use rand::{rngs::SmallRng, SeedableRng};

/// Run a client protocol over a population of records, sharded across
/// available cores.
///
/// * `make_agg` — construct an empty aggregator (one per shard);
/// * `step` — encode one user's record and absorb the report;
/// * `merge` — fold one shard's aggregator into another.
pub fn run_population<A, F, G, M>(rows: &[u64], seed: u64, make_agg: F, step: G, merge: M) -> A
where
    A: Send,
    F: Fn() -> A + Sync,
    G: Fn(u64, &mut SmallRng, &mut A) + Sync,
    M: Fn(&mut A, A),
{
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(rows.len().max(1));
    if threads <= 1 || rows.len() < 4096 {
        let mut agg = make_agg();
        let mut rng = SmallRng::seed_from_u64(splitmix64(seed));
        for &row in rows {
            step(row, &mut rng, &mut agg);
        }
        return agg;
    }

    let chunk = rows.len().div_ceil(threads);
    let mut parts: Vec<A> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = rows
            .chunks(chunk)
            .enumerate()
            .map(|(shard, shard_rows)| {
                let step = &step;
                let make_agg = &make_agg;
                scope.spawn(move |_| {
                    let mut agg = make_agg();
                    // Per-shard deterministic stream independent of the
                    // thread count actually used at runtime is not needed;
                    // determinism holds for a fixed machine configuration.
                    let mut rng =
                        SmallRng::seed_from_u64(splitmix64(seed ^ (shard as u64) << 32));
                    for &row in shard_rows {
                        step(row, &mut rng, &mut agg);
                    }
                    agg
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("population worker panicked");

    let mut acc = parts.remove(0);
    for part in parts {
        merge(&mut acc, part);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_every_row_once() {
        let rows: Vec<u64> = (0..100_000).map(|i| i % 7).collect();
        let agg = run_population(
            &rows,
            1,
            || vec![0u64; 7],
            |row, _rng, agg| agg[row as usize] += 1,
            |a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            },
        );
        assert_eq!(agg.iter().sum::<u64>(), 100_000);
        for (v, expect) in agg.iter().zip([14286u64, 14286, 14286, 14286, 14286, 14285, 14285]) {
            assert_eq!(*v, expect);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let rows: Vec<u64> = (0..50_000).map(|i| i % 3).collect();
        let run = |seed| {
            run_population(
                &rows,
                seed,
                || 0u64,
                |row, rng, acc| {
                    use rand::Rng;
                    *acc = acc.wrapping_add(row ^ rng.gen::<u64>());
                },
                |a, b| *a = a.wrapping_add(b),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn small_populations_run_inline() {
        let rows = [1u64, 2, 3];
        let agg = run_population(
            &rows,
            0,
            || 0u64,
            |row, _rng, acc| *acc += row,
            |a, b| *a += b,
        );
        assert_eq!(agg, 6);
    }
}
