//! Deterministic (and optionally sharded) simulation of a user population.
//!
//! Each user runs their client protocol independently, so the population
//! loop shards cleanly: the server side is an [`Accumulator`], whose
//! contract (commutative `absorb`, associative + commutative `merge`,
//! exact integer state) is the **single source of truth** for why
//! sharding is safe — see the partition-invariance law spelled out on
//! [`Accumulator`]. This module contributes the
//! other half: the **seed schedule**. Every user `u` draws from a
//! private RNG seeded as a function of `(seed, u)` only (see
//! [`user_rng`]), so the randomness a user consumes is independent of
//! how the population is partitioned. Reports are therefore identical
//! under any partition, the accumulator's partition-invariance law does
//! the rest, and [`ingest_sharded`] is **bit-identical** (up to
//! serialized accumulator state) to the serial [`ingest`] for *any*
//! shard count.
//!
//! [`run_population`] / [`run_population_sharded`] are the closure-based
//! lower layer for aggregates that do not implement [`Accumulator`]
//! (tests, one-off histograms); mechanism code should prefer
//! [`ingest`] / [`ingest_sharded`].

use crate::Accumulator;
use ldp_sampling::hash::splitmix64;
use rand::{rngs::SmallRng, SeedableRng};
use rayon::prelude::*;

/// The private RNG of user `user` under population seed `seed`.
///
/// Distinct users get decorrelated SplitMix64-whitened seeds; the
/// golden-ratio multiply keeps nearby user indices far apart in seed
/// space before whitening.
#[inline]
#[must_use]
pub fn user_rng(seed: u64, user: u64) -> SmallRng {
    SmallRng::seed_from_u64(splitmix64(seed ^ user.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Serially encode and absorb every user's report into a fresh
/// [`Accumulator`] — the reference semantics for [`ingest_sharded`].
///
/// * `make_acc` — construct the empty accumulator (e.g.
///   [`crate::Mechanism::accumulator`]);
/// * `encode` — produce user `u`'s report from their record and private
///   RNG (e.g. [`crate::Mechanism::encode`]).
pub fn ingest<A, F, E>(rows: &[u64], seed: u64, make_acc: F, encode: E) -> A
where
    A: Accumulator,
    F: Fn() -> A + Sync + Send,
    E: Fn(u64, &mut SmallRng) -> A::Report + Sync + Send,
{
    ingest_sharded(rows, seed, 1, make_acc, encode)
}

/// [`ingest`] with the population partitioned into `shards` contiguous
/// chunks executed in parallel; per-shard accumulators are
/// [`Accumulator::merge`]d in shard order.
///
/// By the seed schedule (module docs) plus the accumulator laws, the
/// resulting state is identical to serial [`ingest`] for every `shards`
/// value — the property `tests/streaming.rs` checks byte-for-byte.
pub fn ingest_sharded<A, F, E>(rows: &[u64], seed: u64, shards: usize, make_acc: F, encode: E) -> A
where
    A: Accumulator,
    F: Fn() -> A + Sync + Send,
    E: Fn(u64, &mut SmallRng) -> A::Report + Sync + Send,
{
    run_population_sharded(
        rows,
        seed,
        shards,
        make_acc,
        |row, rng, acc: &mut A| acc.absorb(&encode(row, rng)),
        |acc, part| acc.merge(part),
    )
}

/// Run a client protocol serially over a population of records, with
/// explicit closures instead of an [`Accumulator`] (for ad-hoc
/// aggregates; mechanism code should prefer [`ingest`]).
///
/// * `make_agg` — construct an empty aggregate;
/// * `step` — encode one user's record and absorb the report;
/// * `merge` — fold one shard's aggregate into another (unused in the
///   serial path, accepted so both runners share a signature). To keep
///   the bit-identity guarantee, `step` and `merge` must follow the
///   same laws [`Accumulator`] demands of its implementations.
///
/// This is the reference semantics: [`run_population_sharded`] produces
/// the same aggregate state for every shard count.
pub fn run_population<A, F, G, M>(rows: &[u64], seed: u64, make_agg: F, step: G, merge: M) -> A
where
    A: Send,
    F: Fn() -> A + Sync + Send,
    G: Fn(u64, &mut SmallRng, &mut A) + Sync + Send,
    M: Fn(&mut A, A),
{
    run_population_sharded(rows, seed, 1, make_agg, step, merge)
}

/// Closure-based variant of [`ingest_sharded`]: split the population
/// into `shards` contiguous chunks executed in parallel (via the rayon
/// work-queue), then merge in shard order.
///
/// Because the seed schedule is per-user (see [`user_rng`]) and the
/// `step`/`merge` closures are expected to follow the [`Accumulator`]
/// laws, the result is bit-identical to the serial [`run_population`]
/// regardless of `shards` or thread scheduling.
pub fn run_population_sharded<A, F, G, M>(
    rows: &[u64],
    seed: u64,
    shards: usize,
    make_agg: F,
    step: G,
    merge: M,
) -> A
where
    A: Send,
    F: Fn() -> A + Sync + Send,
    G: Fn(u64, &mut SmallRng, &mut A) + Sync + Send,
    M: Fn(&mut A, A),
{
    let shards = shards.clamp(1, rows.len().max(1));

    let run_shard = |first_user: usize, shard_rows: &[u64]| {
        let mut agg = make_agg();
        for (offset, &row) in shard_rows.iter().enumerate() {
            let mut rng = user_rng(seed, (first_user + offset) as u64);
            step(row, &mut rng, &mut agg);
        }
        agg
    };

    if shards <= 1 {
        return run_shard(0, rows);
    }

    let chunk = rows.len().div_ceil(shards);
    let tasks: Vec<(usize, &[u64])> = rows
        .chunks(chunk)
        .enumerate()
        .map(|(i, shard_rows)| (i * chunk, shard_rows))
        .collect();
    let parts: Vec<A> = tasks
        .into_par_iter()
        .map(|(first_user, shard_rows)| run_shard(first_user, shard_rows))
        .collect();

    let mut parts = parts.into_iter();
    let mut acc = parts.next().unwrap_or_else(&make_agg);
    for part in parts {
        merge(&mut acc, part);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(rows: &[u64], seed: u64, shards: usize) -> Vec<u64> {
        run_population_sharded(
            rows,
            seed,
            shards,
            || vec![0u64; 7],
            |row, _rng, agg| agg[row as usize] += 1,
            |a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            },
        )
    }

    #[test]
    fn counts_every_row_once() {
        let rows: Vec<u64> = (0..100_000).map(|i| i % 7).collect();
        let agg = histogram(&rows, 1, 8);
        assert_eq!(agg.iter().sum::<u64>(), 100_000);
        for (v, expect) in agg
            .iter()
            .zip([14286u64, 14286, 14286, 14286, 14286, 14285, 14285])
        {
            assert_eq!(*v, expect);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let rows: Vec<u64> = (0..50_000).map(|i| i % 3).collect();
        let run = |seed| {
            run_population(
                &rows,
                seed,
                || 0u64,
                |row, rng, acc| {
                    use rand::Rng;
                    *acc = acc.wrapping_add(row ^ rng.gen::<u64>());
                },
                |a, b| *a = a.wrapping_add(b),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    /// The load-bearing property: randomness consumed per user does not
    /// depend on the shard layout, so any shard count reproduces the
    /// serial result exactly — even for an order-sensitive aggregator
    /// (here: a Vec of (user, draw) pairs concatenated across shards).
    #[test]
    fn sharded_is_bit_identical_to_serial() {
        let rows: Vec<u64> = (0..10_000).map(|i| (i * 31) % 64).collect();
        let trace = |shards: usize| {
            run_population_sharded(
                &rows,
                99,
                shards,
                Vec::new,
                |row, rng, acc: &mut Vec<(u64, u64)>| {
                    use rand::Rng;
                    acc.push((row, rng.gen::<u64>()));
                },
                |a, mut b| a.append(&mut b),
            )
        };
        let serial = trace(1);
        for shards in [2usize, 3, 7, 8, 64, 1000, 10_000] {
            assert_eq!(trace(shards), serial, "shards={shards}");
        }
    }

    #[test]
    fn shard_count_larger_than_population() {
        let rows = [1u64, 2, 3];
        let agg = run_population_sharded(
            &rows,
            0,
            128,
            || 0u64,
            |row, _rng, acc| *acc += row,
            |a, b| *a += b,
        );
        assert_eq!(agg, 6);
    }

    #[test]
    fn empty_population() {
        let agg = run_population(&[], 0, || 41u64, |_, _, acc| *acc += 1, |a, b| *a += b);
        assert_eq!(agg, 41);
    }
}
