//! `MargHT` — randomized response on one Hadamard coefficient of one
//! random k-way marginal (§4.3).
//!
//! Client: sample a marginal `β` uniformly, then sample one of the
//! `2^k − 1` non-constant Hadamard coefficients of the user's marginal
//! table; its scaled value is `(−1)^{⟨α, j∧β⟩} ∈ {−1, +1}`, released via
//! ε-RR (`d + k + 1` bits). The constant coefficient is known exactly
//! (`c_0 = 1`), so sampling it would waste the report — see the
//! `ablation_zero_coeff` bench for the measured gain; the paper's
//! analysis treats the sampled set as all `2^k` coefficients, which only
//! changes constants. Aggregator: per (marginal, coefficient), average
//! unbiased reports, then invert the size-`2^k` transform per marginal
//! (Lemma 3.7). Error `Õ(2^{3k/2} d^{k/2} / (ε√N))` (Lemma 4.6).
//!
//! Unlike `InpHT`, coefficients are *not* shared between marginals — the
//! reason the input variant wins (§4.3 "does not obtain as strong a
//! result as InpHT").

use crate::wire::{tag, Reader, WireError, Writer};
use crate::{Accumulator, MarginalSetEstimate};
use ldp_bits::{compress, masks_of_weight, pm_one, Mask};
use ldp_mechanisms::BinaryRandomizedResponse;
use ldp_transform::fwht;
use rand::Rng;

/// One user's report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MargHtReport {
    /// Index of the sampled marginal in `masks_of_weight(d, k)` order.
    pub marginal: u32,
    /// Local coefficient mask in `[1, 2^k)` (over the marginal's own
    /// attributes).
    pub coefficient: u16,
    /// The randomized-response output for the scaled coefficient.
    pub sign_positive: bool,
}

/// Configuration of the `MargHT` mechanism.
#[derive(Clone, Debug)]
pub struct MargHt {
    d: u32,
    k: u32,
    marginals: Vec<Mask>,
    rr: BinaryRandomizedResponse,
}

impl MargHt {
    /// ε-LDP instance targeting k-way marginals over `d` attributes.
    #[must_use]
    pub fn new(d: u32, k: u32, eps: f64) -> Self {
        assert!(k >= 1 && k <= d && k <= 16, "need 1 ≤ k ≤ min(d, 16)");
        MargHt {
            d,
            k,
            marginals: masks_of_weight(d, k).collect(),
            rr: BinaryRandomizedResponse::for_epsilon(eps),
        }
    }

    /// Domain dimensionality.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Marginal order.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of k-way marginals `C(d,k)`.
    #[must_use]
    pub fn marginal_count(&self) -> usize {
        self.marginals.len()
    }

    /// Client: sample (marginal, nonzero local coefficient), release the
    /// perturbed sign.
    #[inline]
    pub fn encode<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> MargHtReport {
        let mi = rng.gen_range(0..self.marginals.len());
        let beta = self.marginals[mi];
        let local_cell = compress(row, beta.bits());
        let alpha = rng.gen_range(1..(1u64 << self.k));
        let theta = pm_one(alpha, local_cell);
        let noisy = self.rr.perturb_sign(theta, rng);
        MargHtReport {
            marginal: mi as u32,
            coefficient: alpha as u16,
            sign_positive: noisy > 0.0,
        }
    }

    /// Fresh aggregator.
    #[must_use]
    pub fn aggregator(&self) -> MargHtAggregator {
        MargHtAggregator {
            rr: self.rr,
            d: self.d,
            k: self.k,
            sums: vec![0i64; (1usize << self.k) * self.marginals.len()],
            counts: vec![0u64; (1usize << self.k) * self.marginals.len()],
        }
    }
}

/// Aggregator for [`MargHt`]: per-(marginal, coefficient) sign sums,
/// stored flat (marginal-major) so the per-report hot loop touches one
/// contiguous table per lane instead of chasing nested `Vec`s.
#[derive(Clone, Debug)]
pub struct MargHtAggregator {
    rr: BinaryRandomizedResponse,
    d: u32,
    k: u32,
    sums: Vec<i64>,
    counts: Vec<u64>,
}

impl MargHtAggregator {
    /// Absorb one report. Coefficient indices are folded into the
    /// sampled marginal's 2^k coefficients (`coefficient mod 2^k`), so a
    /// corrupt wire report degrades to a miscount instead of panicking a
    /// collector thread; a report naming a marginal outside `C(d,k)`
    /// still panics, as before.
    #[inline]
    pub fn absorb(&mut self, report: MargHtReport) {
        let cells = 1usize << self.k;
        let idx = report.marginal as usize * cells + (report.coefficient as usize & (cells - 1));
        self.sums[idx] += if report.sign_positive { 1 } else { -1 };
        self.counts[idx] += 1;
    }

    /// Batched ingest: lane-accumulated `i64` sign sums with the flat
    /// table borrows and coefficient mask hoisted. State is
    /// byte-identical to absorbing each report in order.
    pub fn absorb_batch(&mut self, reports: &[MargHtReport]) {
        let cells = 1usize << self.k;
        let mask = cells - 1;
        let sums = &mut self.sums[..];
        let counts = &mut self.counts[..];
        for report in reports {
            let idx = report.marginal as usize * cells + (report.coefficient as usize & mask);
            // Named invariant before the raw index: the coefficient is
            // masked into range, so the marginal index is the only way
            // this kernel can leave the flat tables.
            debug_assert!(
                idx < counts.len(),
                "report marginal {} outside the C(d,k) coefficient tables",
                report.marginal
            );
            sums[idx] += if report.sign_positive { 1 } else { -1 };
            counts[idx] += 1;
        }
    }

    /// Fold another shard's aggregator into this one.
    pub fn merge(&mut self, other: MargHtAggregator) {
        for (a, b) in self.sums.iter_mut().zip(other.sums) {
            *a += b;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn n(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// Per marginal: unbias each coefficient, pin `c_0 = 1`, and invert
    /// the local Hadamard transform into a table.
    #[must_use]
    pub fn finish(self) -> MarginalSetEstimate {
        let cells = 1usize << self.k;
        let scale = 1.0 / cells as f64;
        let tables = self
            .sums
            .chunks_exact(cells)
            .zip(self.counts.chunks_exact(cells))
            .map(|(sums, counts)| {
                let mut local = vec![0.0f64; cells];
                local[0] = 1.0; // constant coefficient, known exactly
                for a in 1..cells {
                    if counts[a] > 0 {
                        local[a] = self.rr.unbias_sign(sums[a] as f64 / counts[a] as f64);
                    }
                }
                fwht(&mut local);
                for v in local.iter_mut() {
                    *v *= scale;
                }
                local
            })
            .collect();
        MarginalSetEstimate::new(self.d, self.k, tables)
    }
}

impl Accumulator for MargHtAggregator {
    type Report = MargHtReport;
    type Output = MarginalSetEstimate;

    fn absorb(&mut self, report: &MargHtReport) {
        MargHtAggregator::absorb(self, *report);
    }

    fn absorb_batch(&mut self, reports: &[MargHtReport]) {
        MargHtAggregator::absorb_batch(self, reports);
    }

    fn merge(&mut self, other: Self) {
        MargHtAggregator::merge(self, other);
    }

    fn report_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn finalize(self) -> MarginalSetEstimate {
        self.finish()
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_tag(tag::MARG_HT);
        w.put_u32(self.d);
        w.put_u32(self.k);
        w.put_f64(self.rr.keep_probability());
        w.put_i64_slice(&self.sums);
        w.put_u64_slice(&self.counts);
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::with_tag(bytes, tag::MARG_HT)?;
        let d = r.get_u32()?;
        let k = r.get_u32()?;
        let p = r.get_f64()?;
        let flat_sums = r.get_i64_vec()?;
        let flat_counts = r.get_u64_vec()?;
        r.finish()?;
        if !(1..=63).contains(&d) || k < 1 || k > d || k > 16 {
            return Err(WireError::Invalid("MargHT dimensions"));
        }
        if !(p > 0.5 && p < 1.0) {
            return Err(WireError::Invalid("MargHT keep probability"));
        }
        // O(k) count and checked width math — never enumerate C(d,k)
        // masks or trust a product on untrusted dims.
        let marginals = ldp_bits::binomial(u64::from(d), u64::from(k));
        let cells_u64 = 1u64 << k;
        let expected = marginals
            .checked_mul(cells_u64)
            .ok_or(WireError::Invalid("MargHT table shape"))?;
        if flat_sums.len() as u64 != expected || flat_counts.len() as u64 != expected {
            return Err(WireError::Invalid("MargHT table shape"));
        }
        Ok(MargHtAggregator {
            rr: BinaryRandomizedResponse::with_keep_probability(p),
            d,
            k,
            sums: flat_sums,
            counts: flat_counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mean_kway_tvd;
    use ldp_data::{movielens::MovieLensGenerator, BinaryDataset};
    use rand::{rngs::StdRng, SeedableRng};

    fn run(mech: &MargHt, rows: &[u64], seed: u64) -> MarginalSetEstimate {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agg = mech.aggregator();
        for &row in rows {
            agg.absorb(mech.encode(row, &mut rng));
        }
        agg.finish()
    }

    #[test]
    fn reconstructs_marginals() {
        let mut rng = StdRng::seed_from_u64(0);
        let ds = MovieLensGenerator::new(6).generate(150_000, &mut rng);
        let mech = MargHt::new(6, 2, 1.1);
        let est = run(&mech, ds.rows(), 1);
        let tvd = mean_kway_tvd(&est, &ds, 2);
        assert!(tvd < 0.1, "mean 2-way tvd {tvd}");
    }

    #[test]
    fn tables_sum_to_one_exactly() {
        // The constant coefficient is pinned to 1, so every reconstructed
        // table sums to exactly 1.
        let mut rng = StdRng::seed_from_u64(2);
        let ds = MovieLensGenerator::new(5).generate(20_000, &mut rng);
        let mech = MargHt::new(5, 2, 1.1);
        let est = run(&mech, ds.rows(), 3);
        for i in 0..est.marginals().len() {
            let s: f64 = est.table(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "marginal {i} sums to {s}");
        }
    }

    #[test]
    fn point_mass_reconstruction() {
        let rows = vec![0b110u64; 80_000];
        let ds = BinaryDataset::new(3, rows.clone());
        let mech = MargHt::new(3, 2, 2.0);
        let est = run(&mech, &rows, 4);
        let tvd = mean_kway_tvd(&est, &ds, 2);
        assert!(tvd < 0.06, "tvd {tvd}");
    }

    #[test]
    fn from_bytes_rejects_huge_dims_without_enumerating() {
        // d=63, k=16 passes the range checks but implies C(63,16) ≈ 9e14
        // tables; the shape check must reject the blob in O(k), not
        // enumerate masks.
        use crate::wire::{tag, Writer};
        let mut w = Writer::with_tag(tag::MARG_HT);
        w.put_u32(63);
        w.put_u32(16);
        w.put_f64(0.75);
        w.put_i64_slice(&[0; 4]);
        w.put_u64_slice(&[0; 4]);
        let t0 = std::time::Instant::now();
        assert!(<MargHtAggregator as Accumulator>::from_bytes(&w.into_bytes()).is_err());
        assert!(t0.elapsed() < std::time::Duration::from_secs(1));
    }

    #[test]
    fn similar_accuracy_to_marg_ps() {
        // Lemma 4.6 gives MargPS and MargHT the same asymptotic bound;
        // their empirical accuracy should be within a small factor.
        let mut rng = StdRng::seed_from_u64(5);
        let ds = MovieLensGenerator::new(8).generate(120_000, &mut rng);
        let ht = run(&MargHt::new(8, 2, 1.1), ds.rows(), 6);
        let tvd_ht = mean_kway_tvd(&ht, &ds, 2);

        let ps = crate::MargPs::new(8, 2, 1.1);
        let mut agg = ps.aggregator();
        let mut rng2 = StdRng::seed_from_u64(7);
        for &row in ds.rows() {
            agg.absorb(ps.encode(row, &mut rng2));
        }
        let tvd_ps = mean_kway_tvd(&agg.finish(), &ds, 2);
        let ratio = (tvd_ht / tvd_ps).max(tvd_ps / tvd_ht);
        assert!(ratio < 2.0, "MargHT {tvd_ht} vs MargPS {tvd_ps}");
    }
}
