//! Length-framed byte streams and the self-describing stream header —
//! the process-boundary layer of the pipeline.
//!
//! The PR 2 accumulators made partial aggregates *mergeable*; this
//! module makes them (and the per-user reports that feed them)
//! *shippable*. Everything the `ldp-cli` binary moves between processes
//! is a sequence of **frames**: a little-endian `u32` length followed by
//! that many payload bytes. Two stream shapes are built on top:
//!
//! * **report stream** (`ldp-cli encode` output): frame 0 is a
//!   [`StreamHeader`], every following frame is one serialized
//!   [`crate::MechanismReport`] (or oracle report);
//! * **snapshot** (`ldp-cli ingest` / `merge` output): frame 0 is the
//!   same [`StreamHeader`], frame 1 is the [`crate::Accumulator`] state
//!   (`to_bytes`), and nothing follows.
//!
//! The header repeats the protocol configuration (mechanism kind, `d`,
//! `k`, `ε`, and the sketch shape for oracles) so a downstream process
//! can rebuild the matching client or server object without being handed
//! the originating mechanism — the property that lets
//! `encode | ingest ×N | merge | query` run as genuinely separate
//! processes and still be byte-identical to a single-process run.

use crate::wire::{tag, Reader, WireError, Writer};
use crate::{Mechanism, MechanismKind};
use std::io::{self, Read, Write};

/// Hard cap on a single frame's payload length (1 GiB). A length prefix
/// above this is treated as corruption, not an allocation request.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Why a framed stream failed to read or write.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The stream ended inside a frame (length prefix or payload).
    Truncated {
        /// Bytes the frame still owed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized(u64),
    /// A header or payload blob failed to decode.
    Wire(WireError),
    /// A stream ended before a required frame (named here) appeared.
    MissingFrame(&'static str),
    /// A snapshot carried frames after the accumulator state.
    TrailingFrame,
    /// A [`FrameReader::next_frame_while`] read was abandoned because
    /// its `keep_going` condition became false (server shutdown).
    Interrupted,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            FrameError::Oversized(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            FrameError::Wire(e) => write!(f, "bad frame payload: {e}"),
            FrameError::MissingFrame(what) => write!(f, "stream ended before the {what} frame"),
            FrameError::TrailingFrame => write!(f, "unexpected frame after the snapshot state"),
            FrameError::Interrupted => write!(f, "frame read interrupted by shutdown"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// Write length-prefixed frames to any [`Write`] sink.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    inner: W,
}

impl<W: Write> FrameWriter<W> {
    /// Wrap a sink.
    pub fn new(inner: W) -> Self {
        FrameWriter { inner }
    }

    /// Append one frame.
    pub fn write_frame(&mut self, payload: &[u8]) -> Result<(), FrameError> {
        if payload.len() > MAX_FRAME_LEN as usize {
            return Err(FrameError::Oversized(payload.len() as u64));
        }
        self.inner
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.inner.write_all(payload)?;
        Ok(())
    }

    /// Flush the underlying sink.
    pub fn flush(&mut self) -> Result<(), FrameError> {
        self.inner.flush()?;
        Ok(())
    }

    /// Unwrap the sink (without flushing).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Size of a [`FrameReader`]'s internal read buffer. One `read` call
/// against a batched ingest socket typically returns many whole frames,
/// which the reader then slices out without touching the source again —
/// the syscall amortization behind the batched serve wire path.
const READ_BUF_LEN: usize = 64 * 1024;

/// Read length-prefixed frames from any [`Read`] source, buffering
/// reads: the reader pulls up to `READ_BUF_LEN` (64 KiB) per `read` call
/// and serves length prefixes and payloads out of the buffer, so small
/// frames cost no syscall each. Payloads larger than what is buffered
/// stream directly into the caller's vector.
///
/// Because the reader buffers ahead, it must own the source for the
/// rest of the conversation: dropping it (or calling
/// [`FrameReader::into_inner`]) discards any bytes already pulled off
/// the source.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a source.
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            buf: vec![0; READ_BUF_LEN],
            start: 0,
            end: 0,
        }
    }

    /// Bytes buffered but not yet consumed.
    fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Copy up to `dst.len()` already-buffered bytes into `dst`,
    /// consuming them; returns the count copied. `get`-based slicing
    /// keeps this panic-free even if the buffer invariants were ever
    /// violated (it degrades to copying nothing).
    fn take_buffered(&mut self, dst: &mut [u8]) -> usize {
        let n = dst.len().min(self.buffered());
        let src = self.buf.get(self.start..self.start + n);
        let dst = dst.get_mut(..n);
        let (Some(src), Some(dst)) = (src, dst) else {
            return 0;
        };
        dst.copy_from_slice(src);
        self.start += n;
        n
    }

    /// One `read` from the source into the buffer tail (compacting
    /// leftover bytes to the front first); returns the byte count, with
    /// `0` meaning end of stream. `keep_going: None` propagates read
    /// timeouts (`WouldBlock` / `TimedOut`) as I/O errors — the
    /// blocking-source path; `Some` retries through them while the
    /// condition holds and abandons the read with
    /// [`FrameError::Interrupted`] once it does not. Bytes already
    /// buffered are kept across retries, so a frame split over many
    /// timeout windows still assembles correctly.
    fn refill(&mut self, keep_going: Option<&dyn Fn() -> bool>) -> Result<usize, FrameError> {
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        loop {
            let Some(tail) = self.buf.get_mut(self.end..).filter(|t| !t.is_empty()) else {
                // A full buffer cannot happen: callers refill only while
                // they need bytes for a prefix (4 bytes) or a payload
                // shorter than the buffer; longer payloads drain the
                // buffer first and then stream directly.
                return Ok(0);
            };
            match self.inner.read(tail) {
                Ok(n) => {
                    self.end += n;
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    match keep_going {
                        Some(keep) if keep() => continue,
                        Some(_) => return Err(FrameError::Interrupted),
                        None => return Err(e.into()),
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Read from the source directly into the unfilled tail of `dst`
    /// (bypassing the buffer) until `dst` is full or the stream ends;
    /// returns the total filled, starting from `already`. Timeout
    /// handling matches [`FrameReader::refill`].
    fn read_direct(
        &mut self,
        dst: &mut [u8],
        already: usize,
        keep_going: Option<&dyn Fn() -> bool>,
    ) -> Result<usize, FrameError> {
        let mut got = already;
        while let Some(rest) = dst.get_mut(got..).filter(|rest| !rest.is_empty()) {
            match self.inner.read(rest) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    match keep_going {
                        Some(keep) if keep() => continue,
                        Some(_) => return Err(FrameError::Interrupted),
                        None => return Err(e.into()),
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(got)
    }

    /// The shared frame-assembly loop behind both public `next_frame`
    /// forms: length prefix and payload come out of the buffer when
    /// available, with at most one source `read` per refill.
    fn read_frame_into(
        &mut self,
        payload: &mut Vec<u8>,
        keep_going: Option<&dyn Fn() -> bool>,
    ) -> Result<bool, FrameError> {
        let mut len_bytes = [0u8; 4];
        let mut got = self.take_buffered(&mut len_bytes);
        while got < 4 {
            if self.refill(keep_going)? == 0 {
                if got == 0 {
                    return Ok(false);
                }
                return Err(FrameError::Truncated { needed: 4, got });
            }
            if let Some(rest) = len_bytes.get_mut(got..) {
                got += self.take_buffered(rest);
            }
        }
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized(u64::from(len)));
        }
        payload.clear();
        payload.resize(len as usize, 0);
        let mut got = self.take_buffered(payload);
        while got < payload.len() {
            if self.buffered() > 0 {
                if let Some(rest) = payload.get_mut(got..) {
                    got += self.take_buffered(rest);
                }
                continue;
            }
            // Large remainders stream straight from the source; small
            // ones go through the buffer so the bytes of the *next*
            // frames ride along in the same `read` call.
            if payload.len() - got >= READ_BUF_LEN / 2 {
                got = self.read_direct(payload, got, keep_going)?;
                break;
            }
            if self.refill(keep_going)? == 0 {
                break;
            }
        }
        if got < payload.len() {
            return Err(FrameError::Truncated {
                needed: len as usize,
                got,
            });
        }
        Ok(true)
    }

    /// Read the next frame's payload; `Ok(None)` at a clean end of
    /// stream (the source ends exactly on a frame boundary).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let mut payload = Vec::new();
        Ok(self.next_frame_into(&mut payload)?.then_some(payload))
    }

    /// Read the next frame's payload into a caller-owned buffer
    /// (cleared, then filled; capacity is reused across calls). Returns
    /// `Ok(false)` at a clean end of stream — the zero-allocation form
    /// of [`FrameReader::next_frame`] the batched ingest loops use.
    pub fn next_frame_into(&mut self, payload: &mut Vec<u8>) -> Result<bool, FrameError> {
        self.read_frame_into(payload, None)
    }

    /// Read the next frame from a long-lived socket, staying
    /// shutdown-safe: the source should carry a read timeout (or be
    /// non-blocking), and every time it times out `keep_going` is
    /// consulted — the read retries (keeping partial progress) while it
    /// returns true and fails with [`FrameError::Interrupted`] once it
    /// does not. This is the reader loop of the `ldp-cli serve`
    /// connection handlers: a server draining live TCP streams can
    /// neither block forever on an idle peer nor tear down sockets
    /// mid-frame without noticing.
    pub fn next_frame_while<F: Fn() -> bool>(
        &mut self,
        keep_going: F,
    ) -> Result<Option<Vec<u8>>, FrameError> {
        let mut payload = Vec::new();
        Ok(self
            .next_frame_while_into(&mut payload, keep_going)?
            .then_some(payload))
    }

    /// Buffer-reusing form of [`FrameReader::next_frame_while`]: the
    /// payload lands in a caller-owned buffer (cleared, then filled) and
    /// `Ok(false)` marks a clean end of stream. The server's connection
    /// handlers use this so a long-lived ingest socket performs no
    /// per-frame allocation once the buffer has grown to the stream's
    /// largest report.
    pub fn next_frame_while_into<F: Fn() -> bool>(
        &mut self,
        payload: &mut Vec<u8>,
        keep_going: F,
    ) -> Result<bool, FrameError> {
        self.read_frame_into(payload, Some(&keep_going))
    }

    /// Unwrap the source, discarding any read-ahead bytes still
    /// buffered (see the type-level note).
    pub fn into_inner(self) -> R {
        self.inner
    }
}

/// Frame 0 of every report stream and snapshot: the protocol
/// configuration a downstream process needs to rebuild the matching
/// client or server object.
///
/// `protocol` is the *accumulator* type tag of [`tag`] (`INP_RR` …
/// `INP_EM` for mechanisms, `HCMS` / `CMS` / `OLH` for the frequency
/// oracles), so the header and the accumulator state it precedes name
/// the protocol the same way. The sketch fields (`hashes`, `width`,
/// `family_seed`) are zero for mechanisms; `k` is 1 for oracles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamHeader {
    /// Accumulator type tag from [`tag`] identifying the protocol.
    pub protocol: u8,
    /// Domain dimensionality `d`.
    pub d: u32,
    /// Target marginal order `k`.
    pub k: u32,
    /// Privacy budget ε.
    pub eps: f64,
    /// Sketch hash count `g` (oracles only; 0 for mechanisms).
    pub hashes: u32,
    /// Sketch row width `w` (oracles only; 0 for mechanisms).
    pub width: u32,
    /// Seed of the sketch's public hash family (oracles only).
    pub family_seed: u64,
}

impl StreamHeader {
    /// Header for a mechanism pipeline.
    #[must_use]
    pub fn mechanism(kind: MechanismKind, d: u32, k: u32, eps: f64) -> Self {
        StreamHeader {
            protocol: kind.wire_tag(),
            d,
            k,
            eps,
            hashes: 0,
            width: 0,
            family_seed: 0,
        }
    }

    /// Header for a frequency-oracle pipeline (`protocol` must be one of
    /// the oracle accumulator tags).
    #[must_use]
    pub fn oracle(
        protocol: u8,
        d: u32,
        eps: f64,
        hashes: u32,
        width: u32,
        family_seed: u64,
    ) -> Self {
        StreamHeader {
            protocol,
            d,
            k: 1,
            eps,
            hashes,
            width,
            family_seed,
        }
    }

    /// The mechanism kind this header names, if it names one.
    #[must_use]
    pub fn mechanism_kind(&self) -> Option<MechanismKind> {
        MechanismKind::from_wire_tag(self.protocol)
    }

    /// Rebuild the mechanism this header describes (`None` for oracle
    /// protocols — see `ldp_oracles::build_oracle` for those).
    #[must_use]
    pub fn build_mechanism(&self) -> Option<Mechanism> {
        self.mechanism_kind()
            .map(|kind| kind.build(self.d, self.k, self.eps))
    }

    /// Serialize into the wire form (tag [`tag::STREAM_HEADER`]).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_tag(tag::STREAM_HEADER);
        w.put_u8(self.protocol);
        w.put_u32(self.d);
        w.put_u32(self.k);
        w.put_f64(self.eps);
        w.put_u32(self.hashes);
        w.put_u32(self.width);
        w.put_u64(self.family_seed);
        w.into_bytes()
    }

    /// Decode a header blob, validating the parameter ranges every
    /// protocol shares.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::with_tag(bytes, tag::STREAM_HEADER)?;
        let protocol = r.get_u8()?;
        let d = r.get_u32()?;
        let k = r.get_u32()?;
        let eps = r.get_f64()?;
        let hashes = r.get_u32()?;
        let width = r.get_u32()?;
        let family_seed = r.get_u64()?;
        r.finish()?;
        if !(1..=63).contains(&d) {
            return Err(WireError::Invalid("header dimensionality"));
        }
        if k < 1 || k > d {
            return Err(WireError::Invalid("header marginal order"));
        }
        if !(eps.is_finite() && eps > 0.0) {
            return Err(WireError::Invalid("header epsilon"));
        }
        Ok(StreamHeader {
            protocol,
            d,
            k,
            eps,
            hashes,
            width,
            family_seed,
        })
    }
}

/// Write a snapshot (header frame + accumulator-state frame) to a sink.
pub fn write_snapshot<W: Write>(
    sink: W,
    header: &StreamHeader,
    state: &[u8],
) -> Result<(), FrameError> {
    let mut w = FrameWriter::new(sink);
    w.write_frame(&header.to_bytes())?;
    w.write_frame(state)?;
    w.flush()
}

/// Read a snapshot back: the header and the raw accumulator state
/// (self-describing; decode with `Accumulator::from_bytes`). Rejects
/// streams with missing or trailing frames.
pub fn read_snapshot<R: Read>(source: R) -> Result<(StreamHeader, Vec<u8>), FrameError> {
    let mut r = FrameReader::new(source);
    let header_bytes = r
        .next_frame()?
        .ok_or(FrameError::MissingFrame("stream header"))?;
    let header = StreamHeader::from_bytes(&header_bytes)?;
    let state = r
        .next_frame()?
        .ok_or(FrameError::MissingFrame("accumulator state"))?;
    if r.next_frame()?.is_some() {
        return Err(FrameError::TrailingFrame);
    }
    Ok((header, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Accumulator;
    use rand::SeedableRng;

    #[test]
    fn frames_round_trip_including_empty() {
        let mut buf = Vec::new();
        let mut w = FrameWriter::new(&mut buf);
        w.write_frame(b"alpha").unwrap();
        w.write_frame(b"").unwrap();
        w.write_frame(&[0xFFu8; 300]).unwrap();
        let mut r = FrameReader::new(buf.as_slice());
        assert_eq!(r.next_frame().unwrap().unwrap(), b"alpha");
        assert_eq!(r.next_frame().unwrap().unwrap(), b"");
        assert_eq!(r.next_frame().unwrap().unwrap(), vec![0xFFu8; 300]);
        assert!(r.next_frame().unwrap().is_none());
        // Clean EOF is sticky.
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn truncated_length_prefix_is_an_error() {
        let mut buf = Vec::new();
        FrameWriter::new(&mut buf).write_frame(b"abcdef").unwrap();
        let cut = &buf[..2]; // half a length prefix
        let mut r = FrameReader::new(cut);
        assert!(matches!(
            r.next_frame(),
            Err(FrameError::Truncated { needed: 4, got: 2 })
        ));
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let mut buf = Vec::new();
        FrameWriter::new(&mut buf).write_frame(b"abcdef").unwrap();
        let cut = &buf[..buf.len() - 3];
        let mut r = FrameReader::new(cut);
        assert!(matches!(
            r.next_frame(),
            Err(FrameError::Truncated { needed: 6, got: 3 })
        ));
    }

    #[test]
    fn oversized_length_prefix_fails_before_allocating() {
        let bytes = u32::MAX.to_le_bytes();
        let mut r = FrameReader::new(bytes.as_slice());
        assert!(matches!(
            r.next_frame(),
            Err(FrameError::Oversized(len)) if len == u64::from(u32::MAX)
        ));
    }

    /// A source that yields its bytes one at a time, reporting a read
    /// timeout between every byte — the worst-case fragmentation a TCP
    /// reader with a read timeout can see.
    struct Chopped {
        bytes: Vec<u8>,
        pos: usize,
        timed_out: bool,
    }

    impl std::io::Read for Chopped {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.timed_out {
                self.timed_out = true;
                return Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "window"));
            }
            self.timed_out = false;
            if self.pos == self.bytes.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn next_frame_while_reassembles_across_timeouts() {
        let mut buf = Vec::new();
        let mut w = FrameWriter::new(&mut buf);
        w.write_frame(b"report-one").unwrap();
        w.write_frame(b"report-two").unwrap();
        let mut r = FrameReader::new(Chopped {
            bytes: buf,
            pos: 0,
            timed_out: false,
        });
        assert_eq!(r.next_frame_while(|| true).unwrap().unwrap(), b"report-one");
        assert_eq!(r.next_frame_while(|| true).unwrap().unwrap(), b"report-two");
        assert!(r.next_frame_while(|| true).unwrap().is_none());
    }

    #[test]
    fn next_frame_while_interrupts_on_shutdown() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let mut buf = Vec::new();
        FrameWriter::new(&mut buf).write_frame(b"partial").unwrap();
        let shutdown = AtomicBool::new(false);
        let mut r = FrameReader::new(Chopped {
            bytes: buf,
            pos: 0,
            timed_out: false,
        });
        // First frame completes (retrying through every timeout)…
        let keep = || !shutdown.load(Ordering::SeqCst);
        assert_eq!(r.next_frame_while(keep).unwrap().unwrap(), b"partial");
        // …then shutdown flips mid-wait and the next read is abandoned.
        shutdown.store(true, Ordering::SeqCst);
        assert!(matches!(
            r.next_frame_while(keep),
            Err(FrameError::Interrupted)
        ));
    }

    /// A source that delivers its bytes in a fixed, cycling pattern of
    /// chunk sizes — the fault-injection transport: it can split reads
    /// exactly on a length prefix, inside one, one byte at a time, or
    /// report a read timeout between chunks, while counting how many
    /// times the reader actually hit the source.
    struct ChunkedStream {
        bytes: Vec<u8>,
        pos: usize,
        chunks: Vec<usize>,
        next: usize,
        timeout_between: bool,
        timed_out: bool,
        reads: usize,
    }

    impl ChunkedStream {
        fn new(bytes: Vec<u8>, chunks: Vec<usize>, timeout_between: bool) -> Self {
            ChunkedStream {
                bytes,
                pos: 0,
                chunks,
                next: 0,
                timeout_between,
                timed_out: false,
                reads: 0,
            }
        }
    }

    impl std::io::Read for ChunkedStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.reads += 1;
            if self.timeout_between && !self.timed_out {
                self.timed_out = true;
                return Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "window"));
            }
            self.timed_out = false;
            if self.pos == self.bytes.len() || buf.is_empty() {
                return Ok(0);
            }
            let step = self.chunks[self.next % self.chunks.len()].max(1);
            self.next += 1;
            let n = step.min(buf.len()).min(self.bytes.len() - self.pos);
            buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    /// A frame stream exercising every payload class: empty, tiny,
    /// mid-sized, and one larger than the reader's internal buffer (the
    /// direct-read spill path).
    fn fault_injection_frames() -> Vec<Vec<u8>> {
        vec![
            b"".to_vec(),
            b"x".to_vec(),
            vec![0xAB; 5],
            vec![0xCD; 300],
            (0..(READ_BUF_LEN + 513)).map(|i| i as u8).collect(),
            b"tail".to_vec(),
        ]
    }

    #[test]
    fn buffered_reader_slices_many_frames_from_one_read() {
        let mut buf = Vec::new();
        let mut w = FrameWriter::new(&mut buf);
        for i in 0..100u32 {
            w.write_frame(&i.to_le_bytes()).unwrap();
        }
        // The whole stream arrives in one read call…
        let source = ChunkedStream::new(buf, vec![usize::MAX], false);
        let mut r = FrameReader::new(source);
        for i in 0..100u32 {
            assert_eq!(r.next_frame().unwrap().unwrap(), i.to_le_bytes());
        }
        assert!(r.next_frame().unwrap().is_none());
        // …so the reader touched the source once for the bytes and once
        // for the end-of-stream probe.
        assert_eq!(r.into_inner().reads, 2);
    }

    #[test]
    fn frame_reassembly_survives_adversarial_chunkings() {
        let frames = fault_injection_frames();
        let mut serial = Vec::new();
        let mut w = FrameWriter::new(&mut serial);
        for f in &frames {
            w.write_frame(f).unwrap();
        }
        // 1-byte reads, splits exactly on / inside the 4-byte length
        // prefix, odd cycles straddling frame boundaries, and huge reads.
        let patterns: &[&[usize]] = &[
            &[1],
            &[2],
            &[3],
            &[4],
            &[5],
            &[7, 1],
            &[1, 2, 3],
            &[4, 1],
            &[2, 2, 9],
            &[3, 5],
            &[READ_BUF_LEN - 1],
            &[usize::MAX],
        ];
        for &pattern in patterns {
            for timeouts in [false, true] {
                let source = ChunkedStream::new(serial.clone(), pattern.to_vec(), timeouts);
                let mut r = FrameReader::new(source);
                for (i, want) in frames.iter().enumerate() {
                    let got = if timeouts {
                        r.next_frame_while(|| true).unwrap()
                    } else {
                        // A blocking source never times out; the plain
                        // reader must reassemble identically.
                        r.next_frame().unwrap()
                    };
                    assert_eq!(
                        got.as_deref(),
                        Some(want.as_slice()),
                        "frame {i} torn under chunking {pattern:?} (timeouts: {timeouts})"
                    );
                }
                assert!(
                    r.next_frame_while(|| true).unwrap().is_none(),
                    "spurious trailing frame under chunking {pattern:?}"
                );
            }
        }
    }

    #[test]
    fn eof_at_every_cut_point_is_clean_or_truncated_never_torn() {
        // Two frames; cut the byte stream at every possible point and
        // check the reader reports exactly the right thing: whole
        // frames decode, a cut on a boundary is a clean end of stream,
        // and a cut inside a prefix or payload is `Truncated` with
        // honest counts — never a mis-framed payload.
        let first = b"abcdef".to_vec();
        let second = vec![0x5A; 9];
        let mut serial = Vec::new();
        let mut w = FrameWriter::new(&mut serial);
        w.write_frame(&first).unwrap();
        w.write_frame(&second).unwrap();
        let first_end = 4 + first.len();
        for cut in 0..=serial.len() {
            for pattern in [&[1usize][..], &[3, 4][..], &[usize::MAX][..]] {
                let source = ChunkedStream::new(serial[..cut].to_vec(), pattern.to_vec(), false);
                let mut r = FrameReader::new(source);
                if cut == 0 {
                    assert!(r.next_frame().unwrap().is_none());
                    continue;
                }
                if cut < 4 {
                    assert!(matches!(
                        r.next_frame(),
                        Err(FrameError::Truncated { needed: 4, got }) if got == cut
                    ));
                    continue;
                }
                if cut < first_end {
                    assert!(matches!(
                        r.next_frame(),
                        Err(FrameError::Truncated { needed, got })
                            if needed == first.len() && got == cut - 4
                    ));
                    continue;
                }
                assert_eq!(r.next_frame().unwrap().unwrap(), first);
                if cut == first_end {
                    assert!(r.next_frame().unwrap().is_none());
                } else if cut < first_end + 4 {
                    assert!(matches!(
                        r.next_frame(),
                        Err(FrameError::Truncated { needed: 4, got })
                            if got == cut - first_end
                    ));
                } else if cut < serial.len() {
                    assert!(matches!(
                        r.next_frame(),
                        Err(FrameError::Truncated { needed, got })
                            if needed == second.len() && got == cut - first_end - 4
                    ));
                } else {
                    assert_eq!(r.next_frame().unwrap().unwrap(), second);
                    assert!(r.next_frame().unwrap().is_none());
                }
            }
        }
    }

    #[test]
    fn header_round_trips_for_every_mechanism_kind() {
        for kind in MechanismKind::ALL {
            let header = StreamHeader::mechanism(kind, 8, 2, 1.1);
            let back = StreamHeader::from_bytes(&header.to_bytes()).unwrap();
            assert_eq!(back, header);
            assert_eq!(back.mechanism_kind(), Some(kind));
            let mech = back.build_mechanism().unwrap();
            assert_eq!(mech.kind(), kind);
        }
    }

    #[test]
    fn header_rejects_bad_tag_and_bad_fields() {
        let header = StreamHeader::mechanism(MechanismKind::InpHt, 8, 2, 1.1);
        let mut bytes = header.to_bytes();
        bytes[0] = tag::OLH; // not a STREAM_HEADER tag
        assert!(matches!(
            StreamHeader::from_bytes(&bytes),
            Err(WireError::WrongTag { .. })
        ));

        let bad_eps = StreamHeader {
            eps: f64::NAN,
            ..header
        };
        assert_eq!(
            StreamHeader::from_bytes(&bad_eps.to_bytes()),
            Err(WireError::Invalid("header epsilon"))
        );
        let bad_k = StreamHeader { k: 9, ..header };
        assert_eq!(
            StreamHeader::from_bytes(&bad_k.to_bytes()),
            Err(WireError::Invalid("header marginal order"))
        );
        let bad_d = StreamHeader {
            d: 0,
            k: 0,
            ..header
        };
        assert_eq!(
            StreamHeader::from_bytes(&bad_d.to_bytes()),
            Err(WireError::Invalid("header dimensionality"))
        );
        let truncated = &header.to_bytes()[..10];
        assert_eq!(
            StreamHeader::from_bytes(truncated),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn snapshot_round_trips_and_rejects_malformed_streams() {
        let mech = MechanismKind::MargPs.build(6, 2, 0.8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut acc = mech.accumulator();
        for u in 0..200u64 {
            acc.absorb(&mech.encode(u % 64, &mut rng));
        }
        let header = StreamHeader::mechanism(MechanismKind::MargPs, 6, 2, 0.8);

        let mut buf = Vec::new();
        write_snapshot(&mut buf, &header, &acc.to_bytes()).unwrap();
        let (back_header, state) = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(back_header, header);
        assert_eq!(state, acc.to_bytes());
        let back = crate::MechanismAccumulator::from_bytes(&state).unwrap();
        assert_eq!(back.report_count(), 200);

        // Missing accumulator frame.
        let mut short = Vec::new();
        FrameWriter::new(&mut short)
            .write_frame(&header.to_bytes())
            .unwrap();
        assert!(matches!(
            read_snapshot(short.as_slice()),
            Err(FrameError::MissingFrame("accumulator state"))
        ));

        // Trailing frame after the state.
        let mut long = Vec::new();
        {
            let mut w = FrameWriter::new(&mut long);
            w.write_frame(&header.to_bytes()).unwrap();
            w.write_frame(&acc.to_bytes()).unwrap();
            w.write_frame(b"junk").unwrap();
        }
        assert!(matches!(
            read_snapshot(long.as_slice()),
            Err(FrameError::TrailingFrame)
        ));

        // Empty stream.
        assert!(matches!(
            read_snapshot([].as_slice()),
            Err(FrameError::MissingFrame("stream header"))
        ));
    }
}
